//! The batch runner: request in, response out, nothing escapes.
//!
//! [`Engine::run_request`] is the request lifecycle:
//!
//! 1. **Admission** — the budget ([`vpec_core::harness::BuildBudget`]) is
//!    checked against the raw layout before extraction, so an over-budget
//!    request costs O(N) rather than O(N³).
//! 2. **Isolation** — the work runs inside
//!    [`crate::boundary::run_guarded`]: panics become typed errors, the
//!    deadline watchdog fires a [`CancelToken`] polled throughout the
//!    numerics/circuit layers.
//! 3. **Retry** — retryable failures get bounded retries with exponential
//!    backoff.
//! 4. **Degradation** — when the terminal failure says "the full build is
//!    too expensive" (deadline, matrix-dimension budget) and the request
//!    asked for a full-inversion kind, the engine re-runs it as a
//!    windowed wVPEC model (provably passive, O(N·b³)) and marks the
//!    response `degraded: true` instead of failing it.
//!
//! [`Engine::run_stream`] maps a JSONL request stream through that
//! lifecycle, flushing one response line per request so downstream
//! consumers see progress in real time.

use crate::boundary::run_guarded;
use crate::cache::ModelCache;
use crate::request::{AnalysisSpec, ScenarioRequest, ScenarioResponse, StructureSpec};
use crate::telemetry::StreamTelemetry;
use crate::EngineError;
use std::io::{BufRead, Write};
use vpec_metrics::RunRecord;
use std::sync::Arc;
use std::time::Instant;
use vpec_circuit::ac::AcSpec;
use vpec_circuit::metrics::peak_abs;
use vpec_circuit::{SolverKind, TransientSpec};
use vpec_core::harness::{BuildBudget, BuiltModel, Experiment, ModelKind};
use vpec_core::DriveConfig;
use vpec_extract::ExtractionConfig;
use vpec_geometry::{BusSpec, Layout, SpiralSpec};
use vpec_numerics::fault::FaultInjection;
use vpec_numerics::CancelToken;

/// Engine-wide resilience policy. Per-request `deadline_ms` overrides the
/// engine default.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Default wall-clock deadline per request, milliseconds (`None` =
    /// unbounded).
    pub deadline_ms: Option<u64>,
    /// Admission budget, checked before any heavy work.
    pub budget: BuildBudget,
    /// Retries after the first attempt for retryable failures.
    pub retries: usize,
    /// Base backoff before retry `k` (doubled each retry), milliseconds.
    pub backoff_ms: u64,
    /// Permit the graceful wVPEC fallback for over-budget / over-deadline
    /// full-inversion requests.
    pub degrade: bool,
    /// Window size `b` of the fallback wVPEC model.
    pub degrade_window: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            deadline_ms: None,
            budget: BuildBudget::unlimited(),
            retries: 1,
            backoff_ms: 10,
            degrade: true,
            degrade_window: 4,
        }
    }
}

/// Aggregate counters for one [`Engine::run_stream`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamSummary {
    /// Requests seen (blank/comment lines excluded).
    pub total: usize,
    /// Requests answered with `status: "ok"` (including degraded ones).
    pub ok: usize,
    /// Requests answered with `status: "failed"`.
    pub failed: usize,
    /// Requests marked `degraded: true`.
    pub degraded: usize,
    /// Retries consumed across the stream (attempts beyond each
    /// request's first).
    pub retries: usize,
    /// Model-cache hits over the whole stream.
    pub cache_hits: u64,
    /// Model-cache misses over the whole stream.
    pub cache_misses: u64,
}

/// Solver/cache attribution of one successful attempt, mirrored into the
/// run-ledger record.
#[derive(Debug, Clone, Copy, Default)]
struct SolveAttribution {
    /// Accepted factorization strategy label, when a transient ran.
    strategy: Option<&'static str>,
    /// Preconditioner the iterative stage settled on, when it did.
    preconditioner: Option<&'static str>,
    /// MNA matrix dimension of the transient system.
    dim: Option<usize>,
    /// Model-build phase wall time, ms.
    build_ms: Option<f64>,
    /// Solve phase wall time, ms.
    solve_ms: Option<f64>,
    /// The geometry-keyed extraction cache answered.
    experiment_hit: bool,
    /// The prepared-factorization cache answered.
    factor_hit: bool,
}

/// What one successful attempt produced.
struct AttemptOutput {
    elements: usize,
    cache_hit: bool,
    /// Peak |V| over the probed far ends, volts.
    peak: Option<f64>,
    /// The solve itself reported degraded operation.
    degraded_solve: bool,
    notes: Vec<String>,
    attr: SolveAttribution,
}

/// The ledger's analysis-class label for a request.
fn analysis_label(spec: &AnalysisSpec) -> &'static str {
    match spec {
        AnalysisSpec::Transient { .. } => "transient",
        AnalysisSpec::Ac { .. } => "ac",
        AnalysisSpec::BuildOnly => "build",
    }
}

/// Assembles the run-ledger record from a finished response plus the
/// solver/cache attribution of the attempt that produced it.
fn ledger_record(
    analysis: &AnalysisSpec,
    resp: &ScenarioResponse,
    attr: &SolveAttribution,
    queue_ms: f64,
) -> RunRecord {
    RunRecord {
        id: resp.id.clone(),
        ok: resp.ok,
        error: resp.error.as_ref().map(|e| e.category().to_string()),
        kind: resp.requested.clone(),
        ran: resp.ran.clone(),
        analysis: analysis_label(analysis).to_string(),
        retries: resp.attempts.saturating_sub(1),
        degraded: resp.degraded,
        degraded_reason: resp.degraded_reason.clone(),
        experiment_hit: attr.experiment_hit,
        model_hit: resp.cache_hit,
        factor_hit: attr.factor_hit,
        strategy: attr.strategy.map(str::to_string),
        preconditioner: attr.preconditioner.map(str::to_string),
        dim: attr.dim,
        elements: resp.elements,
        queue_ms,
        build_ms: attr.build_ms,
        solve_ms: attr.solve_ms,
        total_ms: resp.elapsed_ms,
        // Dense-factorization upper bound: an n×n matrix of f64.
        peak_scratch_bytes: attr.dim.map(|d| 8 * (d as u64) * (d as u64)),
    }
}

/// The transient spec for a request, carrying its `"solver"` override.
/// Used for both the factor-cache key and the run itself —
/// [`vpec_circuit::TransientFactor`] validation compares the spec's
/// solver, so the two must be built identically.
fn transient_spec(t_stop: f64, dt: f64, solver: Option<SolverKind>) -> TransientSpec {
    let spec = TransientSpec::new(t_stop, dt);
    match solver {
        Some(kind) => spec.solver(kind),
        None => spec,
    }
}

/// Builds the geometry + extraction config + drive for a request
/// (mirrors the CLI's structure handling).
fn build_geometry(spec: &StructureSpec) -> (Layout, ExtractionConfig, DriveConfig) {
    match *spec {
        StructureSpec::Bus {
            bits,
            segments,
            misalign,
            shield_every,
        } => {
            let mut bus = BusSpec::new(bits).segments(segments).misalignment(misalign);
            if let Some(k) = shield_every {
                bus = bus.shield_every(k);
            }
            let layout = bus.build();
            let first_signal = layout.signal_nets().first().copied().unwrap_or(0);
            (
                layout,
                ExtractionConfig::paper_default(),
                DriveConfig::paper_default().aggressors(vec![first_signal]),
            )
        }
        StructureSpec::Spiral { turns } => {
            let spec = if turns == 3 {
                SpiralSpec::paper_three_turn()
            } else {
                SpiralSpec::new(turns)
            };
            let cfg = match spec.substrate_spec() {
                Some(sub) => ExtractionConfig::paper_default().with_substrate(sub),
                None => ExtractionConfig::paper_default(),
            };
            (spec.build(), cfg, DriveConfig::paper_default())
        }
    }
}

/// The resilient batch engine: a policy plus a model cache.
#[derive(Debug, Default)]
pub struct Engine {
    config: EngineConfig,
    cache: ModelCache,
}

impl Engine {
    /// An engine with the given policy and an empty cache.
    pub fn new(config: EngineConfig) -> Self {
        Engine {
            config,
            cache: ModelCache::new(),
        }
    }

    /// The engine's policy.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The model cache (hit/miss counters for reporting).
    pub fn cache(&self) -> &ModelCache {
        &self.cache
    }

    /// One isolated attempt at `req` with an explicit kind and fault set
    /// (the degraded fallback re-enters here with a windowed kind and
    /// faults stripped).
    fn attempt(
        &mut self,
        req: &ScenarioRequest,
        kind: ModelKind,
        faults: FaultInjection,
        deadline_ms: Option<u64>,
    ) -> Result<AttemptOutput, EngineError> {
        let token = CancelToken::new();
        let work_token = token.clone();
        let budget = self.config.budget;
        let cache = &mut self.cache;
        let analysis = req.analysis.clone();
        let structure = req.structure.clone();
        let solver = req.solver;
        run_guarded(deadline_ms, &token, move || {
            assert!(
                !faults.panic_engine,
                "injected engine panic (FaultInjection::panic_engine)"
            );
            let (layout, cfg, drive) = build_geometry(&structure);
            budget
                .check(layout.filaments().len(), kind, analysis.steps())
                .map_err(EngineError::from_build)?;

            // Fault-injected requests bypass the cache in both directions:
            // they must not be answered from it, and their (possibly
            // half-poisoned) artifacts must not enter it.
            let (model, cache_hit, prefactor, experiment_hit, factor_hit): (
                Arc<BuiltModel>,
                bool,
                Option<Arc<vpec_circuit::TransientFactor>>,
                bool,
                bool,
            ) = if faults.is_armed() {
                let cfg = cfg.with_faults(faults);
                let exp = Experiment::new(layout, &cfg, drive);
                let built = exp
                    .build_cancel(kind, &work_token)
                    .map_err(EngineError::from_build)?;
                (Arc::new(built), false, None, false, false)
            } else {
                let (hash, exp, exp_hit) = cache.experiment_for(layout, &cfg, drive);
                let (model, hit) = cache
                    .model_for(hash, &exp, kind, &work_token)
                    .map_err(EngineError::from_build)?;
                // Factor-once/solve-many: transient requests also fetch the
                // prepared MNA factorization, cached alongside the model so
                // repeats skip the factor + DC phases.
                let (prefactor, f_hit) = match &analysis {
                    AnalysisSpec::Transient { t_stop, dt } => {
                        let (factor, f_hit) = cache
                            .factor_for(hash, kind, &model, &transient_spec(*t_stop, *dt, solver))
                            .map_err(|e| EngineError::AnalysisFailed {
                                message: e.to_string(),
                            })?;
                        (Some(factor), f_hit)
                    }
                    _ => (None, false),
                };
                (model, hit, prefactor, exp_hit, f_hit)
            };

            let analysis_err = |e: vpec_core::CoreError| EngineError::AnalysisFailed {
                message: e.to_string(),
            };
            match analysis {
                AnalysisSpec::Transient { t_stop, dt } => {
                    let spec = transient_spec(t_stop, dt, solver)
                        .fault_injection(faults)
                        .cancel_token(work_token.clone());
                    let (res, report, _) = match &prefactor {
                        Some(pf) => model
                            .run_transient_with_report_prefactored(&spec, pf)
                            .map_err(analysis_err)?,
                        None => model.run_transient_with_report(&spec).map_err(analysis_err)?,
                    };
                    let mut peak: f64 = 0.0;
                    for k in 0..model.model.far_nodes.len() {
                        let w = model.far_voltage(&res, k).map_err(analysis_err)?;
                        peak = peak.max(peak_abs(&w));
                    }
                    let attr = SolveAttribution {
                        strategy: report
                            .transient
                            .as_ref()
                            .and_then(|t| t.factor.accepted())
                            .map(|s| s.label()),
                        preconditioner: report
                            .transient
                            .as_ref()
                            .and_then(|t| t.factor.preconditioner),
                        dim: report
                            .transient
                            .as_ref()
                            .map(|t| t.dim)
                            .filter(|&d| d > 0),
                        build_ms: Some(
                            report.build_seconds.unwrap_or(model.build_seconds) * 1e3,
                        ),
                        solve_ms: report.solve_seconds.map(|s| s * 1e3),
                        experiment_hit,
                        factor_hit,
                    };
                    Ok(AttemptOutput {
                        elements: model.element_count(),
                        cache_hit,
                        peak: Some(peak),
                        degraded_solve: report.degraded(),
                        notes: report.lines(),
                        attr,
                    })
                }
                AnalysisSpec::Ac {
                    f_start,
                    f_stop,
                    points_per_decade,
                } => {
                    let spec = AcSpec::log_sweep(f_start, f_stop, points_per_decade)
                        .map_err(|e| EngineError::AnalysisFailed {
                            message: e.to_string(),
                        })?
                        .cancel_token(work_token.clone());
                    let t_solve = Instant::now();
                    let (res, _) = model.run_ac(&spec).map_err(analysis_err)?;
                    let solve_ms = t_solve.elapsed().as_secs_f64() * 1e3;
                    let mut peak: f64 = 0.0;
                    for &node in &model.model.far_nodes {
                        let mag = res.magnitude(node).map_err(|e| EngineError::AnalysisFailed {
                            message: e.to_string(),
                        })?;
                        peak = mag.iter().fold(peak, |a, &m| a.max(m));
                    }
                    Ok(AttemptOutput {
                        elements: model.element_count(),
                        cache_hit,
                        peak: Some(peak),
                        degraded_solve: false,
                        notes: Vec::new(),
                        attr: SolveAttribution {
                            build_ms: Some(model.build_seconds * 1e3),
                            solve_ms: Some(solve_ms),
                            experiment_hit,
                            factor_hit,
                            ..SolveAttribution::default()
                        },
                    })
                }
                AnalysisSpec::BuildOnly => Ok(AttemptOutput {
                    elements: model.element_count(),
                    cache_hit,
                    peak: None,
                    degraded_solve: model.repair.as_ref().is_some_and(|r| r.repaired()),
                    notes: Vec::new(),
                    attr: SolveAttribution {
                        build_ms: Some(model.build_seconds * 1e3),
                        experiment_hit,
                        factor_hit,
                        ..SolveAttribution::default()
                    },
                }),
            }
        })
    }

    /// Runs one request through the full resilience lifecycle. Never
    /// panics and never blocks past the deadline (plus one unit of
    /// cooperative work): every outcome is a [`ScenarioResponse`].
    pub fn run_request(&mut self, req: &ScenarioRequest) -> ScenarioResponse {
        self.run_request_recorded(req, 0.0).0
    }

    /// [`Engine::run_request`] plus the matching run-ledger record.
    /// `queue_ms` is how long the request waited before the engine picked
    /// it up (stream read + idle time); it is passed through verbatim.
    pub fn run_request_recorded(
        &mut self,
        req: &ScenarioRequest,
        queue_ms: f64,
    ) -> (ScenarioResponse, RunRecord) {
        let _sp = vpec_trace::span!("engine.request", "id" => req.id.clone());
        let t0 = Instant::now();
        let deadline = req.deadline_ms.or(self.config.deadline_ms);
        let requested = req.kind.label();

        let mut attempts = 0;
        let (response, attr) = 'outcome: {
            let terminal = loop {
                attempts += 1;
                match self.attempt(req, req.kind, req.faults, deadline) {
                    Ok(out) => {
                        break 'outcome (
                            ScenarioResponse {
                                id: req.id.clone(),
                                ok: true,
                                requested: requested.clone(),
                                ran: Some(requested),
                                degraded: out.degraded_solve,
                                degraded_reason: None,
                                attempts,
                                cache_hit: out.cache_hit,
                                elapsed_ms: t0.elapsed().as_secs_f64() * 1e3,
                                elements: Some(out.elements),
                                peak_mv: out.peak.map(|p| p * 1e3),
                                notes: out.notes,
                                error: None,
                            },
                            out.attr,
                        )
                    }
                    Err(e) => {
                        if e.retryable() && attempts <= self.config.retries {
                            vpec_trace::counter_add("engine.retry", 1);
                            let backoff = self.config.backoff_ms << (attempts - 1).min(6);
                            std::thread::sleep(std::time::Duration::from_millis(backoff));
                            continue;
                        }
                        break e;
                    }
                }
            };

            // Graceful degradation: answer "too expensive" with the windowed
            // model instead of a failure. Faults are stripped — the fallback
            // exists to produce a usable answer, not to re-run the fault.
            if self.config.degrade && terminal.degradable() && req.kind.needs_full_inversion() {
                let b = self.config.degrade_window.max(1);
                let wkind = ModelKind::WVpecGeometric { b };
                vpec_trace::counter_add("engine.degraded", 1);
                match self.attempt(req, wkind, FaultInjection::none(), deadline) {
                    Ok(out) => {
                        let mut notes = out.notes;
                        notes.push(format!(
                            "degraded to {} after: {terminal}",
                            wkind.label()
                        ));
                        break 'outcome (
                            ScenarioResponse {
                                id: req.id.clone(),
                                ok: true,
                                requested,
                                ran: Some(wkind.label()),
                                degraded: true,
                                degraded_reason: Some(terminal.category().to_string()),
                                attempts,
                                cache_hit: out.cache_hit,
                                elapsed_ms: t0.elapsed().as_secs_f64() * 1e3,
                                elements: Some(out.elements),
                                peak_mv: out.peak.map(|p| p * 1e3),
                                notes,
                                error: None,
                            },
                            out.attr,
                        );
                    }
                    Err(fallback_err) => {
                        break 'outcome (
                            ScenarioResponse {
                                id: req.id.clone(),
                                ok: false,
                                requested,
                                ran: None,
                                degraded: false,
                                degraded_reason: None,
                                attempts,
                                cache_hit: false,
                                elapsed_ms: t0.elapsed().as_secs_f64() * 1e3,
                                elements: None,
                                peak_mv: None,
                                notes: vec![format!(
                                    "degraded fallback also failed: {fallback_err}"
                                )],
                                error: Some(terminal),
                            },
                            SolveAttribution::default(),
                        )
                    }
                }
            }

            (
                ScenarioResponse {
                    id: req.id.clone(),
                    ok: false,
                    requested,
                    ran: None,
                    degraded: false,
                    degraded_reason: None,
                    attempts,
                    cache_hit: false,
                    elapsed_ms: t0.elapsed().as_secs_f64() * 1e3,
                    elements: None,
                    peak_mv: None,
                    notes: Vec::new(),
                    error: Some(terminal),
                },
                SolveAttribution::default(),
            )
        };

        let record = ledger_record(&req.analysis, &response, &attr, queue_ms);
        (response, record)
    }

    /// Streams JSONL requests from `reader` to JSONL responses on
    /// `writer`, one line per request, flushed per line. Unparseable
    /// lines produce `failed` responses; blank lines and `#` comments are
    /// skipped; the stream itself never aborts a batch.
    ///
    /// # Errors
    ///
    /// [`EngineError::Io`] only — a request can fail, the stream cannot,
    /// short of the transport itself breaking.
    pub fn run_stream<R: BufRead, W: Write>(
        &mut self,
        reader: R,
        writer: &mut W,
    ) -> Result<StreamSummary, EngineError> {
        self.run_stream_with(reader, writer, &mut StreamTelemetry::disabled())
    }

    /// [`Engine::run_stream`] with per-request telemetry: each request
    /// appends one run-ledger record (unparseable lines included), the
    /// registry's request counters/histograms are fed, and long streams
    /// interleave periodic snapshot records. A disabled
    /// [`StreamTelemetry`] makes this identical to [`Engine::run_stream`].
    ///
    /// # Errors
    ///
    /// [`EngineError::Io`] — from the transport or the telemetry sinks.
    pub fn run_stream_with<R: BufRead, W: Write>(
        &mut self,
        reader: R,
        writer: &mut W,
        telemetry: &mut StreamTelemetry,
    ) -> Result<StreamSummary, EngineError> {
        let io_err = |e: std::io::Error| EngineError::Io {
            message: e.to_string(),
        };
        let mut summary = StreamSummary::default();
        // Queue time = wall clock between finishing the previous response
        // and the engine picking up the next request (stream read + idle).
        let mut idle_since = Instant::now();
        for (index, line) in reader.lines().enumerate() {
            let line = line.map_err(io_err)?;
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let queue_ms = idle_since.elapsed().as_secs_f64() * 1e3;
            let (response, record) = match ScenarioRequest::parse_line(trimmed, index) {
                Ok(req) => self.run_request_recorded(&req, queue_ms),
                Err(e) => {
                    let record = RunRecord {
                        id: format!("line{}", index + 1),
                        ok: false,
                        error: Some(e.category().to_string()),
                        analysis: "unknown".to_string(),
                        queue_ms,
                        ..RunRecord::default()
                    };
                    let response = ScenarioResponse {
                        id: format!("line{}", index + 1),
                        ok: false,
                        requested: String::new(),
                        ran: None,
                        degraded: false,
                        degraded_reason: None,
                        attempts: 0,
                        cache_hit: false,
                        elapsed_ms: 0.0,
                        elements: None,
                        peak_mv: None,
                        notes: Vec::new(),
                        error: Some(e),
                    };
                    (response, record)
                }
            };
            summary.total += 1;
            if response.ok {
                summary.ok += 1;
            } else {
                summary.failed += 1;
            }
            if response.degraded {
                summary.degraded += 1;
            }
            summary.retries += record.retries;
            telemetry.observe(&record).map_err(io_err)?;
            writeln!(writer, "{}", response.to_json_line()).map_err(io_err)?;
            writer.flush().map_err(io_err)?;
            idle_since = Instant::now();
        }
        summary.cache_hits = self.cache.hits();
        summary.cache_misses = self.cache.misses();
        telemetry.finish().map_err(io_err)?;
        Ok(summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(line: &str) -> ScenarioRequest {
        ScenarioRequest::parse_line(line, 0).unwrap()
    }

    #[test]
    fn happy_path_reuses_cache() {
        let mut engine = Engine::new(EngineConfig::default());
        let r = req(r#"{"id":"a","bits":3,"kind":"wvpec-g:2","t_stop":5e-11}"#);
        let first = engine.run_request(&r);
        assert!(first.ok, "{:?}", first.error);
        assert!(!first.cache_hit);
        assert!(first.elements.unwrap() > 0);
        assert!(first.peak_mv.unwrap() > 0.0);
        let second = engine.run_request(&r);
        assert!(second.ok && second.cache_hit);
        assert_eq!(engine.cache().hits(), 1);
    }

    #[test]
    fn transient_repeats_reuse_the_factorization() {
        let mut engine = Engine::new(EngineConfig::default());
        let r = req(r#"{"id":"a","bits":3,"kind":"wvpec-g:2","t_stop":5e-11}"#);
        let first = engine.run_request(&r);
        assert!(first.ok, "{:?}", first.error);
        assert_eq!(
            (engine.cache().factor_hits(), engine.cache().factor_misses()),
            (0, 1),
            "first transient prepares the factorization"
        );
        let second = engine.run_request(&r);
        assert!(second.ok, "{:?}", second.error);
        assert_eq!(
            (engine.cache().factor_hits(), engine.cache().factor_misses()),
            (1, 1),
            "repeat reuses the prepared factorization"
        );
        // Factor reuse must be invisible in the answer: bit-equal peaks.
        assert_eq!(first.peak_mv, second.peak_mv);
        // A longer t_stop at the same dt keeps the matrix unchanged — the
        // factor is still reusable (that's the whole point of the cache).
        let longer = req(r#"{"id":"b","bits":3,"kind":"wvpec-g:2","t_stop":1e-10}"#);
        let third = engine.run_request(&longer);
        assert!(third.ok, "{:?}", third.error);
        assert_eq!(engine.cache().factor_hits(), 2);
        // A different dt over the same model is a different matrix: miss.
        let other_dt = req(r#"{"id":"c","bits":3,"kind":"wvpec-g:2","t_stop":5e-11,"dt":2e-12}"#);
        let fourth = engine.run_request(&other_dt);
        assert!(fourth.ok, "{:?}", fourth.error);
        assert_eq!(
            (engine.cache().factor_hits(), engine.cache().factor_misses()),
            (2, 2)
        );
        // AC and build-only requests never touch the factor cache.
        let ac = req(r#"{"id":"c","bits":3,"kind":"wvpec-g:2","analysis":"ac"}"#);
        let misses_before = engine.cache().factor_misses();
        let resp = engine.run_request(&ac);
        if resp.ok {
            assert_eq!(engine.cache().factor_misses(), misses_before);
        }
    }

    #[test]
    fn solver_override_runs_and_keys_the_factor_cache() {
        let mut engine = Engine::new(EngineConfig::default());
        let direct = req(r#"{"id":"d","bits":3,"kind":"wvpec-g:2","t_stop":5e-11}"#);
        let iterative = req(
            r#"{"id":"i","bits":3,"kind":"wvpec-g:2","t_stop":5e-11,"solver":"iterative"}"#,
        );
        let a = engine.run_request(&direct);
        assert!(a.ok, "{:?}", a.error);
        // Same geometry/kind/dt but a different solver is a different
        // prepared factor — it must miss, not trip the exact-spec
        // revalidation of a cached direct factor.
        let b = engine.run_request(&iterative);
        assert!(b.ok, "{:?}", b.error);
        assert_eq!(engine.cache().factor_misses(), 2);
        assert_eq!(engine.cache().factor_hits(), 0);
        // The two paths answer with the same physics.
        let (pa, pb) = (a.peak_mv.unwrap(), b.peak_mv.unwrap());
        assert!((pa - pb).abs() <= 1e-6 * pa.abs().max(1.0), "{pa} vs {pb}");
        // Repeating the iterative request reuses its own factor.
        let c = engine.run_request(&iterative);
        assert!(c.ok, "{:?}", c.error);
        assert_eq!(engine.cache().factor_hits(), 1);
        assert_eq!(c.peak_mv, b.peak_mv);
    }

    #[test]
    fn panicking_request_is_contained() {
        let mut engine = Engine::new(EngineConfig {
            retries: 2,
            backoff_ms: 1,
            ..EngineConfig::default()
        });
        let boom = req(r#"{"id":"boom","bits":2,"faults":{"panic_extraction":true}}"#);
        let resp = engine.run_request(&boom);
        assert!(!resp.ok);
        assert_eq!(resp.attempts, 3, "panic retries its full bounded budget");
        match &resp.error {
            Some(EngineError::RequestPanicked { message }) => {
                assert!(message.contains("injected extraction panic"), "{message}");
            }
            other => panic!("expected RequestPanicked, got {other:?}"),
        }
        // The engine survives: the next request runs normally.
        let ok = engine.run_request(&req(r#"{"id":"next","bits":2,"kind":"peec","t_stop":5e-11}"#));
        assert!(ok.ok, "{:?}", ok.error);
    }

    #[test]
    fn budget_rejection_degrades_full_kinds() {
        let mut engine = Engine::new(EngineConfig {
            budget: BuildBudget {
                max_matrix_dim: Some(4),
                ..BuildBudget::default()
            },
            degrade_window: 2,
            ..EngineConfig::default()
        });
        // 8 filaments > max dim 4, full inversion kind → degraded wVPEC.
        let r = req(r#"{"id":"big","bits":8,"kind":"vpec-full","t_stop":5e-11}"#);
        let resp = engine.run_request(&r);
        assert!(resp.ok, "{:?}", resp.error);
        assert!(resp.degraded);
        assert_eq!(resp.degraded_reason.as_deref(), Some("budget"));
        assert_eq!(resp.ran.as_deref(), Some("gwVPEC(b=2)"));
        assert_eq!(resp.requested, "full VPEC");
        assert!(resp.notes.iter().any(|n| n.contains("degraded to")));
    }

    #[test]
    fn budget_rejection_is_hard_for_windowed_kinds() {
        let mut engine = Engine::new(EngineConfig {
            budget: BuildBudget {
                max_filaments: Some(4),
                ..BuildBudget::default()
            },
            ..EngineConfig::default()
        });
        // Filament budget is a hard rejection even with degrade on.
        let r = req(r#"{"id":"big","bits":8,"kind":"wvpec-g:2"}"#);
        let resp = engine.run_request(&r);
        assert!(!resp.ok);
        assert!(matches!(
            resp.error,
            Some(EngineError::BudgetExceeded { what: "filament count", .. })
        ));
    }

    #[test]
    fn no_degrade_flag_fails_hard() {
        let mut engine = Engine::new(EngineConfig {
            budget: BuildBudget {
                max_matrix_dim: Some(2),
                ..BuildBudget::default()
            },
            degrade: false,
            ..EngineConfig::default()
        });
        let r = req(r#"{"id":"x","bits":4,"kind":"vpec-full"}"#);
        let resp = engine.run_request(&r);
        assert!(!resp.ok);
        assert!(matches!(resp.error, Some(EngineError::BudgetExceeded { .. })));
    }

    #[test]
    fn stalled_request_hits_deadline_and_degrades() {
        let mut engine = Engine::new(EngineConfig {
            deadline_ms: Some(60),
            degrade_window: 2,
            ..EngineConfig::default()
        });
        // The stall burns the deadline before the transient starts; the
        // cancel token aborts the step loop; the fallback (faults
        // stripped) answers.
        let r = req(
            r#"{"id":"slow","bits":3,"kind":"vpec-full","t_stop":1e-10,"faults":{"stall_ms":500}}"#,
        );
        let t0 = Instant::now();
        let resp = engine.run_request(&r);
        assert!(resp.ok, "{:?}", resp.error);
        assert!(resp.degraded);
        assert_eq!(resp.degraded_reason.as_deref(), Some("deadline"));
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(5),
            "deadline must bound the request"
        );
    }

    #[test]
    fn stream_isolates_bad_lines() {
        let mut engine = Engine::new(EngineConfig {
            retries: 0,
            ..EngineConfig::default()
        });
        let input = "\n# comment\n{\"id\":\"good\",\"bits\":2,\"kind\":\"peec\",\"t_stop\":5e-11}\nnot json\n{\"id\":\"bad-kind\",\"kind\":\"nope\"}\n";
        let mut out = Vec::new();
        let summary = engine
            .run_stream(std::io::Cursor::new(input), &mut out)
            .unwrap();
        assert_eq!(summary.total, 3);
        assert_eq!(summary.ok, 1);
        assert_eq!(summary.failed, 2);
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            let v = vpec_trace::json::parse(line).expect("every response line is valid JSON");
            assert!(v.get("status").is_some());
        }
        assert!(lines[1].contains("bad-request"));
    }
}
