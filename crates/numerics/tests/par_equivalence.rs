//! Property-style serial/parallel equivalence tests for the pool layer.
//!
//! The parallel numerics layer promises *bit-compatible* results at any
//! worker count: chunk distribution is round-robin but per-element
//! arithmetic order never changes. These tests drive the public kernels
//! at 1, 2 and 8 workers over randomized inputs (deterministic
//! [`XorShift64`] seeds) and require agreement within 1e-12 — in
//! practice the differences are exactly zero.

use vpec_numerics::rng::XorShift64;
use vpec_numerics::{pool, Cholesky, DenseMatrix, LuFactor, Pool};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];
const TOL: f64 = 1e-12;

fn random_matrix(rng: &mut XorShift64, rows: usize, cols: usize) -> DenseMatrix<f64> {
    let mut m = DenseMatrix::from_fn(rows, cols, |_, _| 0.0);
    for i in 0..rows {
        for j in 0..cols {
            m[(i, j)] = rng.range_f64(-1.0, 1.0);
        }
    }
    m
}

fn spd_matrix(rng: &mut XorShift64, n: usize) -> DenseMatrix<f64> {
    let b = random_matrix(rng, n, n);
    let mut a = b.transpose().matmul(&b).expect("square");
    for i in 0..n {
        a[(i, i)] += (n as f64) + 1.0;
    }
    a
}

fn assert_close(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: shape mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            (x - y).abs() <= TOL,
            "{what}: element {i} differs: {x} vs {y}"
        );
    }
}

#[test]
fn par_chunks_mut_matches_serial_fill() {
    let n = 1003;
    let mut serial = vec![0.0f64; n];
    Pool::serial().par_chunks_mut(&mut serial, 7, |off, chunk| {
        for (k, x) in chunk.iter_mut().enumerate() {
            *x = ((off + k) as f64).sin();
        }
    });
    for nt in THREAD_COUNTS {
        let mut par = vec![0.0f64; n];
        Pool::with_threads(nt).par_chunks_mut(&mut par, 7, |off, chunk| {
            for (k, x) in chunk.iter_mut().enumerate() {
                *x = ((off + k) as f64).sin();
            }
        });
        assert_close(&serial, &par, "par_chunks_mut");
    }
}

#[test]
fn par_map_preserves_item_order() {
    let mut rng = XorShift64::new(0x2001);
    let items: Vec<f64> = (0..517).map(|_| rng.range_f64(-5.0, 5.0)).collect();
    let serial: Vec<f64> = items.iter().enumerate().map(|(i, x)| x * i as f64).collect();
    for nt in THREAD_COUNTS {
        let par = Pool::with_threads(nt).par_map(&items, |i, x| x * i as f64);
        assert_close(&serial, &par, "par_map");
    }
}

#[test]
fn par_map_index_preserves_index_order() {
    let serial: Vec<f64> = (0..711).map(|i| (i as f64).sqrt().cos()).collect();
    for nt in THREAD_COUNTS {
        let par = Pool::with_threads(nt).par_map_index(711, |i| (i as f64).sqrt().cos());
        assert_close(&serial, &par, "par_map_index");
    }
}

#[test]
fn par_join_returns_both_results() {
    for nt in THREAD_COUNTS {
        let (a, b) = Pool::with_threads(nt).par_join(|| 6 * 7, || "right".len());
        assert_eq!(a, 42);
        assert_eq!(b, 5);
    }
}

#[test]
fn matmul_matches_serial_at_any_thread_count() {
    let mut rng = XorShift64::new(0x2002);
    for &(r, k, c) in &[(5, 7, 3), (64, 64, 64), (130, 97, 41)] {
        let a = random_matrix(&mut rng, r, k);
        let b = random_matrix(&mut rng, k, c);
        pool::set_threads(1);
        let serial = a.matmul(&b).expect("conforming");
        for nt in THREAD_COUNTS {
            pool::set_threads(nt);
            let par = a.matmul(&b).expect("conforming");
            assert_close(serial.as_slice(), par.as_slice(), "matmul");
        }
        pool::set_threads(0);
    }
}

#[test]
fn lu_factor_and_inverse_match_serial() {
    let mut rng = XorShift64::new(0x2003);
    for &n in &[6, 48, 120] {
        let mut a = random_matrix(&mut rng, n, n);
        for i in 0..n {
            a[(i, i)] += n as f64; // dominant, hence nonsingular
        }
        let rhs: Vec<f64> = (0..n).map(|_| rng.range_f64(-2.0, 2.0)).collect();
        let serial = LuFactor::with_threads(&a, 1).expect("nonsingular");
        let x_serial = serial.solve(&rhs).expect("solve");
        let inv_serial = serial.inverse().expect("inverse");
        for nt in THREAD_COUNTS {
            let par = LuFactor::with_threads(&a, nt).expect("nonsingular");
            assert_close(&x_serial, &par.solve(&rhs).expect("solve"), "lu solve");
            assert_close(
                inv_serial.as_slice(),
                par.inverse().expect("inverse").as_slice(),
                "lu inverse",
            );
        }
    }
}

#[test]
fn cholesky_factor_and_inverse_match_serial() {
    let mut rng = XorShift64::new(0x2004);
    for &n in &[6, 48, 120] {
        let a = spd_matrix(&mut rng, n);
        let rhs: Vec<f64> = (0..n).map(|_| rng.range_f64(-2.0, 2.0)).collect();
        let serial = Cholesky::with_threads(&a, 1).expect("SPD");
        let x_serial = serial.solve(&rhs).expect("solve");
        let inv_serial = serial.inverse().expect("inverse");
        for nt in THREAD_COUNTS {
            let par = Cholesky::with_threads(&a, nt).expect("SPD");
            assert_close(&x_serial, &par.solve(&rhs).expect("solve"), "chol solve");
            assert_close(
                inv_serial.as_slice(),
                par.inverse().expect("inverse").as_slice(),
                "chol inverse",
            );
        }
    }
}

#[test]
fn blocked_dispatch_boundaries_are_thread_invariant() {
    // The tuned dispatch switches elimination kernels around the blocked
    // thresholds (default 64 for both LU and Cholesky). The kernel choice
    // depends only on the dimension and the process-stable tune profile —
    // never on the worker count — so sizes straddling each boundary must
    // give *bit-identical* answers at every thread count.
    let mut rng = XorShift64::new(0x2006);
    for &n in &[63, 64, 65, 96, 160] {
        let mut a = random_matrix(&mut rng, n, n);
        for i in 0..n {
            a[(i, i)] += n as f64; // dominant, hence nonsingular
        }
        let rhs: Vec<f64> = (0..n).map(|_| rng.range_f64(-2.0, 2.0)).collect();
        let x1 = LuFactor::with_threads(&a, 1)
            .expect("nonsingular")
            .solve(&rhs)
            .expect("solve");
        for nt in THREAD_COUNTS {
            let xn = LuFactor::with_threads(&a, nt)
                .expect("nonsingular")
                .solve(&rhs)
                .expect("solve");
            assert_eq!(x1, xn, "LU at n={n} must be bit-identical at {nt} workers");
        }
        let s = spd_matrix(&mut rng, n);
        let y1 = Cholesky::with_threads(&s, 1)
            .expect("SPD")
            .solve(&rhs)
            .expect("solve");
        for nt in THREAD_COUNTS {
            let yn = Cholesky::with_threads(&s, nt)
                .expect("SPD")
                .solve(&rhs)
                .expect("solve");
            assert_eq!(y1, yn, "Cholesky at n={n} must be bit-identical at {nt} workers");
        }
    }
}

#[test]
fn matvec_and_matmul_cover_the_unroll_tail() {
    // The register-blocked kernels unroll over four columns/terms; shapes
    // with every remainder mod 4 must agree with a plain reference loop.
    let mut rng = XorShift64::new(0x2007);
    for &k in &[4, 5, 6, 7, 64, 65] {
        let a = random_matrix(&mut rng, 9, k);
        let b = random_matrix(&mut rng, k, 11);
        let x: Vec<f64> = (0..k).map(|_| rng.range_f64(-1.0, 1.0)).collect();
        let y = a.matvec(&x).expect("conforming");
        for i in 0..9 {
            let reference: f64 = (0..k).map(|j| a[(i, j)] * x[j]).sum();
            assert!(
                (y[i] - reference).abs() <= TOL * (1.0 + reference.abs()),
                "matvec tail at k={k}, row {i}: {} vs {reference}",
                y[i]
            );
        }
        let c = a.matmul(&b).expect("conforming");
        for i in 0..9 {
            for j in 0..11 {
                let reference: f64 = (0..k).map(|p| a[(i, p)] * b[(p, j)]).sum();
                assert!(
                    (c[(i, j)] - reference).abs() <= TOL * (1.0 + reference.abs()),
                    "matmul tail at k={k}, ({i},{j})"
                );
            }
        }
    }
}

#[test]
fn env_variable_drives_thread_resolution() {
    // With no override, `VPEC_THREADS` decides — and whatever it decides,
    // the kernels must agree with the serial result.
    let mut rng = XorShift64::new(0x2005);
    let a = random_matrix(&mut rng, 100, 100);
    let b = random_matrix(&mut rng, 100, 100);
    pool::set_threads(1);
    let serial = a.matmul(&b).expect("conforming");
    pool::set_threads(0);
    for nt in THREAD_COUNTS {
        std::env::set_var("VPEC_THREADS", nt.to_string());
        let par = a.matmul(&b).expect("conforming");
        assert_close(serial.as_slice(), par.as_slice(), "matmul via VPEC_THREADS");
    }
    std::env::remove_var("VPEC_THREADS");
}
