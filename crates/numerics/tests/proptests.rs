//! Property-style tests for the linear-algebra kernels.
//!
//! Strategy: generate random diagonally dominant (hence nonsingular) or
//! random-SPD matrices and verify algebraic invariants that must hold for
//! *any* input, not just hand-picked examples. Inputs come from the
//! workspace's deterministic [`XorShift64`] generator so the suite is
//! reproducible and needs no external crates.

use vpec_numerics::rng::XorShift64;
use vpec_numerics::{
    cg, gmres, Cholesky, CooMatrix, CsrMatrix, DenseMatrix, IdentityPreconditioner,
    Ilu0Preconditioner, IlutPreconditioner, IterConfig, JacobiPreconditioner, LuFactor,
    Preconditioner, SparseLu, WvpecPreconditioner,
};

const CASES: usize = 64;

/// An `n×n` strictly diagonally dominant matrix (always nonsingular)
/// plus a right-hand side.
fn dominant_system(rng: &mut XorShift64, n: usize) -> (DenseMatrix<f64>, Vec<f64>) {
    let mut m = DenseMatrix::from_fn(n, n, |_, _| 0.0);
    for i in 0..n {
        for j in 0..n {
            m[(i, j)] = rng.range_f64(-1.0, 1.0);
        }
    }
    for i in 0..n {
        let off: f64 = (0..n).filter(|&j| j != i).map(|j| m[(i, j)].abs()).sum();
        m[(i, i)] = off + 1.0; // strictly dominant
    }
    let b = (0..n).map(|_| rng.range_f64(-10.0, 10.0)).collect();
    (m, b)
}

/// A random SPD matrix `A = Bᵀ·B + I`.
fn spd_matrix(rng: &mut XorShift64, n: usize) -> DenseMatrix<f64> {
    let mut b = DenseMatrix::from_fn(n, n, |_, _| 0.0);
    for i in 0..n {
        for j in 0..n {
            b[(i, j)] = rng.range_f64(-1.0, 1.0);
        }
    }
    let mut a = b.transpose().matmul(&b).expect("square");
    for i in 0..n {
        a[(i, i)] += 1.0;
    }
    a
}

#[test]
fn lu_solve_satisfies_system() {
    let mut rng = XorShift64::new(0x1001);
    for _ in 0..CASES {
        let (a, b) = dominant_system(&mut rng, 8);
        let lu = LuFactor::new(&a).expect("dominant matrices are nonsingular");
        let x = lu.solve(&b).expect("dim matches");
        let back = a.matvec(&x).expect("dim matches");
        for (u, v) in back.iter().zip(b.iter()) {
            assert!((u - v).abs() < 1e-8, "residual too large: {u} vs {v}");
        }
    }
}

#[test]
fn lu_inverse_is_two_sided() {
    let mut rng = XorShift64::new(0x1002);
    for _ in 0..CASES {
        let (a, _b) = dominant_system(&mut rng, 6);
        let inv = LuFactor::new(&a).expect("nonsingular").inverse().expect("ok");
        let eye = DenseMatrix::identity(6);
        assert!(a.matmul(&inv).expect("ok").max_abs_diff(&eye).expect("ok") < 1e-8);
        assert!(inv.matmul(&a).expect("ok").max_abs_diff(&eye).expect("ok") < 1e-8);
    }
}

#[test]
fn cholesky_succeeds_on_spd_and_matches_lu() {
    let mut rng = XorShift64::new(0x1003);
    for _ in 0..CASES {
        let a = spd_matrix(&mut rng, 7);
        let ch = Cholesky::new(&a).expect("SPD by construction");
        let b: Vec<f64> = (0..7).map(|i| (i as f64) - 3.0).collect();
        let x_ch = ch.solve(&b).expect("ok");
        let x_lu = LuFactor::new(&a).expect("ok").solve(&b).expect("ok");
        for (u, v) in x_ch.iter().zip(x_lu.iter()) {
            assert!((u - v).abs() < 1e-7);
        }
    }
}

#[test]
fn cholesky_inverse_of_spd_is_spd() {
    let mut rng = XorShift64::new(0x1004);
    for _ in 0..CASES {
        let a = spd_matrix(&mut rng, 5);
        let inv = Cholesky::new(&a).expect("SPD").inverse().expect("ok");
        assert!(inv.is_symmetric(1e-8));
        assert!(Cholesky::new(&inv).is_ok(), "inverse of SPD must be SPD");
    }
}

#[test]
fn sparse_lu_agrees_with_dense() {
    let mut rng = XorShift64::new(0x1005);
    for _ in 0..CASES {
        let (a, b) = dominant_system(&mut rng, 10);
        let csr = CsrMatrix::from_dense(&a, 0.0);
        let xs = SparseLu::new(&csr).expect("nonsingular").solve(&b).expect("ok");
        let xd = LuFactor::new(&a).expect("nonsingular").solve(&b).expect("ok");
        for (u, v) in xs.iter().zip(xd.iter()) {
            assert!((u - v).abs() < 1e-8, "sparse {u} vs dense {v}");
        }
    }
}

#[test]
fn csr_matvec_matches_dense() {
    let mut rng = XorShift64::new(0x1006);
    for _ in 0..CASES {
        let (a, x) = dominant_system(&mut rng, 9);
        let csr = CsrMatrix::from_dense(&a, 0.0);
        let ys = csr.matvec(&x).expect("ok");
        let yd = a.matvec(&x).expect("ok");
        for (u, v) in ys.iter().zip(yd.iter()) {
            assert!((u - v).abs() < 1e-10);
        }
    }
}

#[test]
fn transpose_is_involution() {
    let mut rng = XorShift64::new(0x1007);
    for _ in 0..CASES {
        let mut coo = CooMatrix::new(12, 12);
        for _ in 0..rng.range_usize(0, 40) {
            let r = rng.range_usize(0, 12);
            let c = rng.range_usize(0, 12);
            let v = rng.range_f64(-5.0, 5.0);
            coo.push(r, c, v).expect("in bounds");
        }
        let m = coo.to_csr();
        let tt = m.transpose().transpose();
        assert_eq!(m, tt);
    }
}

#[test]
fn determinant_sign_consistent_with_cholesky() {
    let mut rng = XorShift64::new(0x1008);
    for _ in 0..CASES {
        // det of an SPD matrix must be positive.
        let a = spd_matrix(&mut rng, 6);
        let det = LuFactor::new(&a).expect("ok").det();
        assert!(det > 0.0, "SPD determinant must be positive, got {det}");
    }
}

/// A sparse banded, strictly diagonally dominant, *nonsymmetric* system
/// (always nonsingular) plus a right-hand side — the shape the Krylov
/// stage sees after equilibration.
fn sparse_dominant(rng: &mut XorShift64, n: usize) -> (CsrMatrix<f64>, Vec<f64>) {
    let mut coo = CooMatrix::new(n, n);
    let mut offsum = vec![0.0f64; n];
    for i in 0..n {
        for j in (i + 1)..(i + 4).min(n) {
            let up = rng.range_f64(-1.0, 1.0);
            let lo = rng.range_f64(-1.0, 1.0);
            coo.push(i, j, up).expect("in bounds");
            coo.push(j, i, lo).expect("in bounds");
            offsum[i] += up.abs();
            offsum[j] += lo.abs();
        }
    }
    for (i, &s) in offsum.iter().enumerate() {
        coo.push(i, i, s + 1.0 + rng.range_f64(0.0, 2.0))
            .expect("in bounds");
    }
    let b = (0..n).map(|_| rng.range_f64(-10.0, 10.0)).collect();
    (coo.to_csr(), b)
}

/// A sparse banded SPD system (symmetric + strictly dominant) plus rhs.
fn sparse_spd(rng: &mut XorShift64, n: usize) -> (CsrMatrix<f64>, Vec<f64>) {
    let mut coo = CooMatrix::new(n, n);
    let mut offsum = vec![0.0f64; n];
    for i in 0..n {
        for j in (i + 1)..(i + 4).min(n) {
            let v = rng.range_f64(-1.0, 1.0);
            coo.push(i, j, v).expect("in bounds");
            coo.push(j, i, v).expect("in bounds");
            offsum[i] += v.abs();
            offsum[j] += v.abs();
        }
    }
    for (i, &s) in offsum.iter().enumerate() {
        coo.push(i, i, s + 1.0).expect("in bounds");
    }
    let b = (0..n).map(|_| rng.range_f64(-10.0, 10.0)).collect();
    (coo.to_csr(), b)
}

/// Every preconditioner on the ladder, built for `a`.
fn all_preconditioners(a: &CsrMatrix<f64>) -> Vec<Box<dyn Preconditioner>> {
    vec![
        Box::new(IdentityPreconditioner::new(a.rows())),
        Box::new(JacobiPreconditioner::from_csr(a).expect("dominant diagonal")),
        Box::new(Ilu0Preconditioner::from_csr(a).expect("dominant diagonal")),
        Box::new(IlutPreconditioner::from_csr(a, 8, 1e-10).expect("finite input")),
        Box::new(WvpecPreconditioner::from_csr(a, 6).expect("dominant windows")),
    ]
}

#[test]
fn gmres_converges_with_every_preconditioner_and_matches_lu() {
    let mut rng = XorShift64::new(0x1009);
    for case in 0..CASES / 2 {
        let (a, b) = sparse_dominant(&mut rng, 24);
        let xd = LuFactor::new(&a.to_dense())
            .expect("nonsingular")
            .solve(&b)
            .expect("dim matches");
        for m in all_preconditioners(&a) {
            let (x, stats) =
                gmres(&a, m.as_ref(), &b, &IterConfig::default()).expect("well-posed");
            assert!(stats.converged, "case {case} {}: {stats:?}", m.label());
            assert!(
                stats.rel_residual <= 1e-10,
                "case {case} {}: {stats:?}",
                m.label()
            );
            for (u, v) in x.iter().zip(xd.iter()) {
                assert!(
                    (u - v).abs() < 1e-7,
                    "case {case} {}: {u} vs {v}",
                    m.label()
                );
            }
        }
    }
}

#[test]
fn cg_converges_with_every_preconditioner_and_matches_lu() {
    let mut rng = XorShift64::new(0x100A);
    for case in 0..CASES / 2 {
        let (a, b) = sparse_spd(&mut rng, 24);
        let xd = LuFactor::new(&a.to_dense())
            .expect("nonsingular")
            .solve(&b)
            .expect("dim matches");
        // CG's theory needs an SPD preconditioner: on a symmetric matrix
        // identity/Jacobi are trivially symmetric and ILU(0)/ILUT inherit
        // symmetry from the pattern, but the wVPEC row-windowed inverse
        // is nonsymmetric by construction (each row inverts a different
        // window) and can stall PCG — the solver layer's probe handles
        // that by falling through to GMRES, so it is skipped here.
        let symmetric_ok: Vec<Box<dyn Preconditioner>> = vec![
            Box::new(IdentityPreconditioner::new(a.rows())),
            Box::new(JacobiPreconditioner::from_csr(&a).expect("dominant diagonal")),
            Box::new(Ilu0Preconditioner::from_csr(&a).expect("dominant diagonal")),
            Box::new(IlutPreconditioner::from_csr(&a, 8, 1e-10).expect("finite input")),
        ];
        for m in symmetric_ok {
            let (x, stats) = cg(&a, m.as_ref(), &b, &IterConfig::default()).expect("SPD");
            assert!(stats.converged, "case {case} {}: {stats:?}", m.label());
            assert!(
                stats.rel_residual <= 1e-10,
                "case {case} {}: {stats:?}",
                m.label()
            );
            for (u, v) in x.iter().zip(xd.iter()) {
                assert!(
                    (u - v).abs() < 1e-7,
                    "case {case} {}: {u} vs {v}",
                    m.label()
                );
            }
        }
    }
}

#[test]
fn gmres_restart_lengths_agree() {
    // The restart knob changes the work schedule, never the answer.
    let mut rng = XorShift64::new(0x100B);
    for _ in 0..CASES / 4 {
        let (a, b) = sparse_dominant(&mut rng, 20);
        let m = IdentityPreconditioner::new(20);
        let mut solutions: Vec<Vec<f64>> = Vec::new();
        for restart in [3, 8, 64] {
            let cfg = IterConfig {
                restart,
                ..IterConfig::default()
            };
            let (x, stats) = gmres(&a, &m, &b, &cfg).expect("well-posed");
            assert!(stats.converged, "restart {restart}: {stats:?}");
            solutions.push(x);
        }
        for s in &solutions[1..] {
            for (u, v) in s.iter().zip(solutions[0].iter()) {
                assert!((u - v).abs() < 1e-7, "{u} vs {v}");
            }
        }
    }
}
