//! Property-style tests for the linear-algebra kernels.
//!
//! Strategy: generate random diagonally dominant (hence nonsingular) or
//! random-SPD matrices and verify algebraic invariants that must hold for
//! *any* input, not just hand-picked examples. Inputs come from the
//! workspace's deterministic [`XorShift64`] generator so the suite is
//! reproducible and needs no external crates.

use vpec_numerics::rng::XorShift64;
use vpec_numerics::{Cholesky, CooMatrix, CsrMatrix, DenseMatrix, LuFactor, SparseLu};

const CASES: usize = 64;

/// An `n×n` strictly diagonally dominant matrix (always nonsingular)
/// plus a right-hand side.
fn dominant_system(rng: &mut XorShift64, n: usize) -> (DenseMatrix<f64>, Vec<f64>) {
    let mut m = DenseMatrix::from_fn(n, n, |_, _| 0.0);
    for i in 0..n {
        for j in 0..n {
            m[(i, j)] = rng.range_f64(-1.0, 1.0);
        }
    }
    for i in 0..n {
        let off: f64 = (0..n).filter(|&j| j != i).map(|j| m[(i, j)].abs()).sum();
        m[(i, i)] = off + 1.0; // strictly dominant
    }
    let b = (0..n).map(|_| rng.range_f64(-10.0, 10.0)).collect();
    (m, b)
}

/// A random SPD matrix `A = Bᵀ·B + I`.
fn spd_matrix(rng: &mut XorShift64, n: usize) -> DenseMatrix<f64> {
    let mut b = DenseMatrix::from_fn(n, n, |_, _| 0.0);
    for i in 0..n {
        for j in 0..n {
            b[(i, j)] = rng.range_f64(-1.0, 1.0);
        }
    }
    let mut a = b.transpose().matmul(&b).expect("square");
    for i in 0..n {
        a[(i, i)] += 1.0;
    }
    a
}

#[test]
fn lu_solve_satisfies_system() {
    let mut rng = XorShift64::new(0x1001);
    for _ in 0..CASES {
        let (a, b) = dominant_system(&mut rng, 8);
        let lu = LuFactor::new(&a).expect("dominant matrices are nonsingular");
        let x = lu.solve(&b).expect("dim matches");
        let back = a.matvec(&x).expect("dim matches");
        for (u, v) in back.iter().zip(b.iter()) {
            assert!((u - v).abs() < 1e-8, "residual too large: {u} vs {v}");
        }
    }
}

#[test]
fn lu_inverse_is_two_sided() {
    let mut rng = XorShift64::new(0x1002);
    for _ in 0..CASES {
        let (a, _b) = dominant_system(&mut rng, 6);
        let inv = LuFactor::new(&a).expect("nonsingular").inverse().expect("ok");
        let eye = DenseMatrix::identity(6);
        assert!(a.matmul(&inv).expect("ok").max_abs_diff(&eye).expect("ok") < 1e-8);
        assert!(inv.matmul(&a).expect("ok").max_abs_diff(&eye).expect("ok") < 1e-8);
    }
}

#[test]
fn cholesky_succeeds_on_spd_and_matches_lu() {
    let mut rng = XorShift64::new(0x1003);
    for _ in 0..CASES {
        let a = spd_matrix(&mut rng, 7);
        let ch = Cholesky::new(&a).expect("SPD by construction");
        let b: Vec<f64> = (0..7).map(|i| (i as f64) - 3.0).collect();
        let x_ch = ch.solve(&b).expect("ok");
        let x_lu = LuFactor::new(&a).expect("ok").solve(&b).expect("ok");
        for (u, v) in x_ch.iter().zip(x_lu.iter()) {
            assert!((u - v).abs() < 1e-7);
        }
    }
}

#[test]
fn cholesky_inverse_of_spd_is_spd() {
    let mut rng = XorShift64::new(0x1004);
    for _ in 0..CASES {
        let a = spd_matrix(&mut rng, 5);
        let inv = Cholesky::new(&a).expect("SPD").inverse().expect("ok");
        assert!(inv.is_symmetric(1e-8));
        assert!(Cholesky::new(&inv).is_ok(), "inverse of SPD must be SPD");
    }
}

#[test]
fn sparse_lu_agrees_with_dense() {
    let mut rng = XorShift64::new(0x1005);
    for _ in 0..CASES {
        let (a, b) = dominant_system(&mut rng, 10);
        let csr = CsrMatrix::from_dense(&a, 0.0);
        let xs = SparseLu::new(&csr).expect("nonsingular").solve(&b).expect("ok");
        let xd = LuFactor::new(&a).expect("nonsingular").solve(&b).expect("ok");
        for (u, v) in xs.iter().zip(xd.iter()) {
            assert!((u - v).abs() < 1e-8, "sparse {u} vs dense {v}");
        }
    }
}

#[test]
fn csr_matvec_matches_dense() {
    let mut rng = XorShift64::new(0x1006);
    for _ in 0..CASES {
        let (a, x) = dominant_system(&mut rng, 9);
        let csr = CsrMatrix::from_dense(&a, 0.0);
        let ys = csr.matvec(&x).expect("ok");
        let yd = a.matvec(&x).expect("ok");
        for (u, v) in ys.iter().zip(yd.iter()) {
            assert!((u - v).abs() < 1e-10);
        }
    }
}

#[test]
fn transpose_is_involution() {
    let mut rng = XorShift64::new(0x1007);
    for _ in 0..CASES {
        let mut coo = CooMatrix::new(12, 12);
        for _ in 0..rng.range_usize(0, 40) {
            let r = rng.range_usize(0, 12);
            let c = rng.range_usize(0, 12);
            let v = rng.range_f64(-5.0, 5.0);
            coo.push(r, c, v).expect("in bounds");
        }
        let m = coo.to_csr();
        let tt = m.transpose().transpose();
        assert_eq!(m, tt);
    }
}

#[test]
fn determinant_sign_consistent_with_cholesky() {
    let mut rng = XorShift64::new(0x1008);
    for _ in 0..CASES {
        // det of an SPD matrix must be positive.
        let a = spd_matrix(&mut rng, 6);
        let det = LuFactor::new(&a).expect("ok").det();
        assert!(det > 0.0, "SPD determinant must be positive, got {det}");
    }
}
