//! Property-based tests for the linear-algebra kernels.
//!
//! Strategy: generate random diagonally dominant (hence nonsingular) or
//! random-SPD matrices and verify algebraic invariants that must hold for
//! *any* input, not just hand-picked examples.

use proptest::prelude::*;
use vpec_numerics::{Cholesky, CooMatrix, CsrMatrix, DenseMatrix, LuFactor, SparseLu};

/// Strategy: an `n×n` strictly diagonally dominant matrix (always
/// nonsingular) plus a right-hand side.
fn dominant_system(n: usize) -> impl Strategy<Value = (DenseMatrix<f64>, Vec<f64>)> {
    let entries = proptest::collection::vec(-1.0f64..1.0, n * n);
    let rhs = proptest::collection::vec(-10.0f64..10.0, n);
    (entries, rhs).prop_map(move |(e, b)| {
        let mut m = DenseMatrix::from_fn(n, n, |i, j| e[i * n + j]);
        for i in 0..n {
            let off: f64 = (0..n).filter(|&j| j != i).map(|j| m[(i, j)].abs()).sum();
            m[(i, i)] = off + 1.0; // strictly dominant
        }
        (m, b)
    })
}

/// Strategy: a random SPD matrix `A = Bᵀ·B + I`.
fn spd_matrix(n: usize) -> impl Strategy<Value = DenseMatrix<f64>> {
    proptest::collection::vec(-1.0f64..1.0, n * n).prop_map(move |e| {
        let b = DenseMatrix::from_fn(n, n, |i, j| e[i * n + j]);
        let mut a = b.transpose().matmul(&b).expect("square");
        for i in 0..n {
            a[(i, i)] += 1.0;
        }
        a
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lu_solve_satisfies_system((a, b) in dominant_system(8)) {
        let lu = LuFactor::new(&a).expect("dominant matrices are nonsingular");
        let x = lu.solve(&b).expect("dim matches");
        let back = a.matvec(&x).expect("dim matches");
        for (u, v) in back.iter().zip(b.iter()) {
            prop_assert!((u - v).abs() < 1e-8, "residual too large: {u} vs {v}");
        }
    }

    #[test]
    fn lu_inverse_is_two_sided((a, _b) in dominant_system(6)) {
        let inv = LuFactor::new(&a).expect("nonsingular").inverse().expect("ok");
        let eye = DenseMatrix::identity(6);
        prop_assert!(a.matmul(&inv).expect("ok").max_abs_diff(&eye).expect("ok") < 1e-8);
        prop_assert!(inv.matmul(&a).expect("ok").max_abs_diff(&eye).expect("ok") < 1e-8);
    }

    #[test]
    fn cholesky_succeeds_on_spd_and_matches_lu(a in spd_matrix(7)) {
        let ch = Cholesky::new(&a).expect("SPD by construction");
        let b: Vec<f64> = (0..7).map(|i| (i as f64) - 3.0).collect();
        let x_ch = ch.solve(&b).expect("ok");
        let x_lu = LuFactor::new(&a).expect("ok").solve(&b).expect("ok");
        for (u, v) in x_ch.iter().zip(x_lu.iter()) {
            prop_assert!((u - v).abs() < 1e-7);
        }
    }

    #[test]
    fn cholesky_inverse_of_spd_is_spd(a in spd_matrix(5)) {
        let inv = Cholesky::new(&a).expect("SPD").inverse().expect("ok");
        prop_assert!(inv.is_symmetric(1e-8));
        prop_assert!(Cholesky::new(&inv).is_ok(), "inverse of SPD must be SPD");
    }

    #[test]
    fn sparse_lu_agrees_with_dense((a, b) in dominant_system(10)) {
        let csr = CsrMatrix::from_dense(&a, 0.0);
        let xs = SparseLu::new(&csr).expect("nonsingular").solve(&b).expect("ok");
        let xd = LuFactor::new(&a).expect("nonsingular").solve(&b).expect("ok");
        for (u, v) in xs.iter().zip(xd.iter()) {
            prop_assert!((u - v).abs() < 1e-8, "sparse {u} vs dense {v}");
        }
    }

    #[test]
    fn csr_matvec_matches_dense((a, x) in dominant_system(9)) {
        let csr = CsrMatrix::from_dense(&a, 0.0);
        let ys = csr.matvec(&x).expect("ok");
        let yd = a.matvec(&x).expect("ok");
        for (u, v) in ys.iter().zip(yd.iter()) {
            prop_assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn transpose_is_involution(entries in proptest::collection::vec((0usize..12, 0usize..12, -5.0f64..5.0), 0..40)) {
        let mut coo = CooMatrix::new(12, 12);
        for (r, c, v) in entries {
            coo.push(r, c, v).expect("in bounds");
        }
        let m = coo.to_csr();
        let tt = m.transpose().transpose();
        prop_assert_eq!(m, tt);
    }

    #[test]
    fn determinant_sign_consistent_with_cholesky(a in spd_matrix(6)) {
        // det of an SPD matrix must be positive.
        let det = LuFactor::new(&a).expect("ok").det();
        prop_assert!(det > 0.0, "SPD determinant must be positive, got {det}");
    }
}
