//! Restarted GMRES with right preconditioning.
//!
//! The general-purpose Krylov solver for the (nonsymmetric) MNA systems:
//! modified-Gram-Schmidt Arnoldi, Givens-rotation least squares, restart
//! every `m` iterations with a true-residual convergence check at each
//! restart boundary. Right preconditioning keeps the monitored residual
//! in the original (unpreconditioned) norm, so the reported relative
//! residual is directly comparable to the direct solvers' audit residual.

use crate::operator::LinearOperator;
use crate::precond::Preconditioner;
use crate::vector::{axpy, dot, norm2, scale};
use crate::NumericsError;

/// Iteration controls shared by [`gmres`] and [`crate::cg`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterConfig {
    /// Total matrix-vector product budget across restarts.
    pub max_iters: usize,
    /// Krylov subspace dimension between restarts (GMRES only).
    pub restart: usize,
    /// Convergence threshold on the normwise backward error
    /// `‖b − A·x‖ / (‖A‖∞·‖x‖ + ‖b‖)` — the same normalization the
    /// direct solvers' audit residual uses. For operators without a norm
    /// estimate ([`crate::LinearOperator::norm_inf_est`] returns `None`)
    /// the denominator degrades to `‖b‖`.
    pub rel_tol: f64,
}

impl Default for IterConfig {
    fn default() -> Self {
        IterConfig {
            max_iters: 500,
            restart: 64,
            rel_tol: 1e-12,
        }
    }
}

/// What an iterative solve did, whether or not it converged.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct IterStats {
    /// Matrix-vector products performed.
    pub iterations: usize,
    /// Restart cycles completed (GMRES) or zero (CG).
    pub restarts: usize,
    /// Final true normwise backward error
    /// `‖b − A·x‖ / (‖A‖∞·‖x‖ + ‖b‖)` (or `‖b − A·x‖ / ‖b‖` when the
    /// operator provides no norm estimate; identical at `x = 0`).
    pub rel_residual: f64,
    /// Whether the tolerance was reached within the iteration budget.
    pub converged: bool,
}

/// Solves `A·x = b` by restarted right-preconditioned GMRES, starting
/// from `x = 0`. Returns the iterate and its statistics; an exhausted
/// iteration budget is reported via `stats.converged == false`, not an
/// error, so callers can decide between accepting, retrying, and falling
/// through to another factorization strategy.
///
/// # Errors
///
/// [`NumericsError::DimensionMismatch`] on shape disagreement between
/// `a`, `m`, and `b`; [`NumericsError::NonFinite`] if the iteration
/// produces NaN/∞ (a singular or absurdly scaled preconditioner);
/// [`NumericsError::Singular`] on a zero diagonal in the least-squares
/// triangle (operator numerically singular on the Krylov subspace).
pub fn gmres(
    a: &dyn LinearOperator,
    m: &dyn Preconditioner,
    b: &[f64],
    cfg: &IterConfig,
) -> Result<(Vec<f64>, IterStats), NumericsError> {
    let n = a.dim();
    if b.len() != n || m.dim() != n {
        return Err(NumericsError::DimensionMismatch {
            op: "gmres",
            expected: (n, 1),
            found: (b.len().max(m.dim()), 1),
        });
    }
    let bnorm = norm2(b);
    let mut x = vec![0.0; n];
    let mut stats = IterStats::default();
    if bnorm == 0.0 {
        stats.converged = true;
        return Ok((x, stats));
    }
    if !bnorm.is_finite() {
        return Err(NumericsError::NonFinite {
            op: "gmres",
            index: (0, 0),
        });
    }
    let mut restart = cfg.restart.clamp(1, n.max(1));
    let anorm = a.norm_inf_est();
    let mut r = vec![0.0; n];
    let mut prev_beta = f64::INFINITY;
    loop {
        // True residual: r = b − A·x.
        a.apply(&x, &mut r);
        for (ri, bi) in r.iter_mut().zip(b.iter()) {
            *ri = bi - *ri;
        }
        let beta = norm2(&r);
        // Stall escalation: restarted GMRES can stagnate when the
        // Krylov dimension it needs exceeds the restart length — each
        // cycle rebuilds nearly the same subspace and the truncation
        // discards exactly the directions that would have converged.
        // When a full cycle fails to halve the residual, double the
        // restart length (up to `n`, where the method is exact); the
        // overall work stays bounded by `cfg.max_iters`.
        if beta > 0.5 * prev_beta {
            restart = (restart * 2).min(n.max(1));
        }
        prev_beta = beta;
        // Normwise backward error when the operator norm is known — the
        // `‖b‖`-relative residual cannot reach a fixed tolerance on stiff
        // systems where `‖A‖‖x‖ ≫ ‖b‖`.
        let denom = anorm.map_or(bnorm, |na| na * norm2(&x) + bnorm);
        stats.rel_residual = beta / denom;
        if !stats.rel_residual.is_finite() {
            return Err(NumericsError::NonFinite {
                op: "gmres",
                index: (stats.iterations, 0),
            });
        }
        if stats.rel_residual <= cfg.rel_tol {
            stats.converged = true;
            return Ok((x, stats));
        }
        if stats.iterations >= cfg.max_iters {
            return Ok((x, stats));
        }

        // One Arnoldi cycle of at most `restart` steps.
        let mut v: Vec<Vec<f64>> = Vec::with_capacity(restart + 1);
        let mut z: Vec<Vec<f64>> = Vec::with_capacity(restart);
        let mut h: Vec<Vec<f64>> = Vec::with_capacity(restart);
        let mut cs: Vec<f64> = Vec::with_capacity(restart);
        let mut sn: Vec<f64> = Vec::with_capacity(restart);
        let mut g = vec![0.0; restart + 1];
        g[0] = beta;
        let mut first = r.clone();
        scale(1.0 / beta, &mut first);
        v.push(first);
        let mut cols = 0;
        for j in 0..restart {
            if stats.iterations >= cfg.max_iters {
                break;
            }
            stats.iterations += 1;
            let mut zj = vec![0.0; n];
            m.apply(&v[j], &mut zj);
            let mut w = vec![0.0; n];
            a.apply(&zj, &mut w);
            z.push(zj);

            // Modified Gram–Schmidt orthogonalization.
            let mut hcol = vec![0.0; j + 2];
            for (i, vi) in v.iter().enumerate() {
                let hij = dot(&w, vi);
                hcol[i] = hij;
                axpy(-hij, vi, &mut w);
            }
            let hlast = norm2(&w);
            hcol[j + 1] = hlast;
            if hcol.iter().any(|c| !c.is_finite()) {
                return Err(NumericsError::NonFinite {
                    op: "gmres",
                    index: (stats.iterations, j),
                });
            }

            // Rotate the new column into upper-triangular form.
            for i in 0..j {
                let t = cs[i] * hcol[i] + sn[i] * hcol[i + 1];
                hcol[i + 1] = -sn[i] * hcol[i] + cs[i] * hcol[i + 1];
                hcol[i] = t;
            }
            let (c, s) = givens(hcol[j], hcol[j + 1]);
            cs.push(c);
            sn.push(s);
            hcol[j] = c * hcol[j] + s * hcol[j + 1];
            hcol[j + 1] = 0.0;
            g[j + 1] = -s * g[j];
            g[j] *= c;
            h.push(hcol);
            cols = j + 1;

            let happy = hlast == 0.0;
            if g[j + 1].abs() / bnorm <= cfg.rel_tol || happy {
                break;
            }
            let mut next = w;
            scale(1.0 / hlast, &mut next);
            v.push(next);
        }

        // Back-substitute H·y = g and accumulate x += Σ yⱼ·zⱼ.
        let mut y = vec![0.0; cols];
        for i in (0..cols).rev() {
            let mut acc = g[i];
            for (k, yk) in y.iter().enumerate().take(cols).skip(i + 1) {
                acc -= h[k][i] * yk;
            }
            if h[i][i] == 0.0 {
                return Err(NumericsError::Singular { step: i });
            }
            y[i] = acc / h[i][i];
        }
        for (yj, zj) in y.iter().zip(z.iter()) {
            axpy(*yj, zj, &mut x);
        }
        stats.restarts += 1;
    }
}

/// A Givens rotation `(c, s)` zeroing `b` against `a`.
fn givens(a: f64, b: f64) -> (f64, f64) {
    if b == 0.0 {
        (1.0, 0.0)
    } else {
        let r = a.hypot(b);
        (a / r, b / r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precond::{IdentityPreconditioner, JacobiPreconditioner};
    use crate::{CooMatrix, CsrMatrix};

    fn laplacian(n: usize) -> CsrMatrix<f64> {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.5).unwrap();
            if i > 0 {
                coo.push(i, i - 1, -1.0).unwrap();
            }
            if i + 1 < n {
                coo.push(i, i + 1, -1.0).unwrap();
            }
        }
        coo.to_csr()
    }

    #[test]
    fn converges_on_a_laplacian() {
        let a = laplacian(50);
        let b = vec![1.0; 50];
        let m = IdentityPreconditioner::new(50);
        let (x, stats) = gmres(&a, &m, &b, &IterConfig::default()).unwrap();
        assert!(stats.converged, "{stats:?}");
        assert!(stats.rel_residual <= 1e-12);
        let ax = a.matvec(&x).unwrap();
        for (l, r) in ax.iter().zip(b.iter()) {
            assert!((l - r).abs() < 1e-9);
        }
    }

    #[test]
    fn restarting_still_converges() {
        let a = laplacian(60);
        let b: Vec<f64> = (0..60).map(|i| (i as f64 * 0.3).sin()).collect();
        let m = JacobiPreconditioner::from_csr(&a).unwrap();
        let cfg = IterConfig {
            restart: 5,
            ..IterConfig::default()
        };
        let (_, stats) = gmres(&a, &m, &b, &cfg).unwrap();
        assert!(stats.converged, "{stats:?}");
        assert!(stats.restarts >= 1, "restart path must be exercised");
    }

    #[test]
    fn zero_rhs_returns_zero_without_iterating() {
        let a = laplacian(8);
        let m = IdentityPreconditioner::new(8);
        let (x, stats) = gmres(&a, &m, &[0.0; 8], &IterConfig::default()).unwrap();
        assert!(stats.converged);
        assert_eq!(stats.iterations, 0);
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn budget_exhaustion_is_reported_not_an_error() {
        let a = laplacian(40);
        let m = IdentityPreconditioner::new(40);
        let cfg = IterConfig {
            max_iters: 2,
            restart: 2,
            rel_tol: 1e-14,
        };
        let (_, stats) = gmres(&a, &m, &vec![1.0; 40], &cfg).unwrap();
        assert!(!stats.converged);
        assert!(stats.iterations <= 2);
        assert!(stats.rel_residual > 0.0);
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let a = laplacian(4);
        let m = IdentityPreconditioner::new(4);
        let err = gmres(&a, &m, &[1.0; 3], &IterConfig::default()).unwrap_err();
        assert!(matches!(err, NumericsError::DimensionMismatch { .. }));
    }
}
