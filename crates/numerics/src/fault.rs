//! Deterministic fault injection at pipeline stage boundaries.
//!
//! Defaults to "inject nothing". Carried by extraction configs and
//! analysis specs so integration tests (and the engine's request schema)
//! can exercise every branch of the recovery chain deterministically:
//! factor-fallback engagement, transient NaN recovery, panic isolation at
//! the extraction and engine boundaries, and deadline enforcement.
//!
//! The struct lives in `vpec-numerics` (the bottom of the crate stack) so
//! every layer can consume it; `vpec-circuit` re-exports it under its
//! original `diagnostics` path for compatibility.

/// Test-only fault injection at pipeline stage boundaries.
///
/// Defaults to "inject nothing". Carried by analysis specs so
/// integration tests (and the engine request schema) can exercise
/// every branch of the recovery chain deterministically.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultInjection {
    /// Report the primary factorization backend as failed, forcing the
    /// fallback chain to engage.
    pub fail_primary_factor: bool,
    /// Poison the transient solution with NaN once, right after this
    /// accepted step count (0 poisons the first computed step).
    pub poison_step: Option<usize>,
    /// Panic inside parasitic extraction — exercises the engine's
    /// `catch_unwind` request boundary at the earliest pipeline stage.
    pub panic_extraction: bool,
    /// Panic inside the engine request boundary itself, after the request
    /// has been admitted but before any model work.
    pub panic_engine: bool,
    /// Stall the transient loop for this many milliseconds before the
    /// first step — a deterministic way to trip a wall-clock deadline.
    pub stall_ms: Option<u64>,
}

impl FaultInjection {
    /// No faults — the default.
    pub fn none() -> Self {
        FaultInjection::default()
    }

    /// `true` if any fault is armed.
    pub fn is_armed(&self) -> bool {
        self.fail_primary_factor
            || self.poison_step.is_some()
            || self.panic_extraction
            || self.panic_engine
            || self.stall_ms.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_disarmed() {
        assert!(!FaultInjection::none().is_armed());
        assert_eq!(FaultInjection::none(), FaultInjection::default());
    }

    #[test]
    fn every_fault_arms() {
        let cases = [
            FaultInjection {
                fail_primary_factor: true,
                ..FaultInjection::none()
            },
            FaultInjection {
                poison_step: Some(3),
                ..FaultInjection::none()
            },
            FaultInjection {
                panic_extraction: true,
                ..FaultInjection::none()
            },
            FaultInjection {
                panic_engine: true,
                ..FaultInjection::none()
            },
            FaultInjection {
                stall_ms: Some(10),
                ..FaultInjection::none()
            },
        ];
        for f in cases {
            assert!(f.is_armed(), "{f:?} should arm");
        }
    }
}
