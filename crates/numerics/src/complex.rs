//! A minimal double-precision complex number for AC (frequency-domain)
//! analysis.
//!
//! The circuit engine factors the same MNA matrix in real arithmetic for
//! transient analysis and in complex arithmetic for AC sweeps; implementing
//! [`Complex64`] here (rather than pulling a dependency) keeps the solver
//! stack self-contained.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
///
/// # Example
///
/// ```
/// use vpec_numerics::Complex64;
///
/// let z = Complex64::new(3.0, 4.0);
/// assert_eq!(z.abs(), 5.0);
/// assert_eq!((z * z.conj()).re, 25.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates (magnitude, phase in
    /// radians).
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex64::new(r * theta.cos(), r * theta.sin())
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex64::new(self.re, -self.im)
    }

    /// Magnitude `|z|`, computed with `hypot` for robustness against
    /// overflow/underflow.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Phase angle in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Uses Smith's algorithm to avoid intermediate overflow.
    #[inline]
    pub fn recip(self) -> Self {
        if self.re.abs() >= self.im.abs() {
            let r = self.im / self.re;
            let d = self.re + self.im * r;
            Complex64::new(1.0 / d, -r / d)
        } else {
            let r = self.re / self.im;
            let d = self.re * r + self.im;
            Complex64::new(r / d, -1.0 / d)
        }
    }

    /// Returns `true` if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// Returns `true` if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Complex square root (principal branch).
    pub fn sqrt(self) -> Self {
        let r = self.abs();
        if r == 0.0 {
            return Complex64::ZERO;
        }
        let re = ((r + self.re) / 2.0).sqrt();
        let im_mag = ((r - self.re) / 2.0).sqrt();
        Complex64::new(re, if self.im >= 0.0 { im_mag } else { -im_mag })
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl From<f64> for Complex64 {
    fn from(re: f64) -> Self {
        Complex64::from_real(re)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w = z·w⁻¹ by definition
    fn div(self, rhs: Complex64) -> Complex64 {
        self * rhs.recip()
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re * rhs, self.im * rhs)
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re / rhs, self.im / rhs)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Complex64) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex64) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: Complex64) {
        *self = *self / rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn construction_and_constants() {
        assert_eq!(Complex64::ZERO + Complex64::ONE, Complex64::new(1.0, 0.0));
        assert_eq!(Complex64::I * Complex64::I, Complex64::new(-1.0, 0.0));
        assert_eq!(Complex64::from(2.5).re, 2.5);
        assert_eq!(Complex64::from(2.5).im, 0.0);
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex64::new(1.5, -2.5);
        let w = Complex64::new(-0.25, 3.0);
        assert_eq!(z + w - w, z);
        let prod = z * w;
        let back = prod / w;
        assert!((back - z).abs() < EPS);
    }

    #[test]
    fn division_matches_manual_formula() {
        let z = Complex64::new(3.0, 4.0);
        let w = Complex64::new(1.0, -2.0);
        let q = z / w;
        // (3+4i)/(1-2i) = (3+4i)(1+2i)/5 = (3+6i+4i-8)/5 = (-5+10i)/5 = -1+2i
        assert!((q - Complex64::new(-1.0, 2.0)).abs() < EPS);
    }

    #[test]
    fn recip_handles_component_dominance_both_ways() {
        for z in [Complex64::new(1e10, 1.0), Complex64::new(1.0, 1e10)] {
            let r = z.recip();
            assert!((z * r - Complex64::ONE).abs() < 1e-10);
        }
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex64::from_polar(2.0, std::f64::consts::FRAC_PI_3);
        assert!((z.abs() - 2.0).abs() < EPS);
        assert!((z.arg() - std::f64::consts::FRAC_PI_3).abs() < EPS);
    }

    #[test]
    fn sqrt_squares_back() {
        for z in [
            Complex64::new(-4.0, 0.0),
            Complex64::new(3.0, -4.0),
            Complex64::new(0.0, 2.0),
            Complex64::ZERO,
        ] {
            let s = z.sqrt();
            assert!((s * s - z).abs() < 1e-10, "sqrt failed for {z}");
        }
    }

    #[test]
    fn conjugate_properties() {
        let z = Complex64::new(1.0, 2.0);
        assert_eq!(z.conj().conj(), z);
        assert!((z * z.conj()).im.abs() < EPS);
        assert!(((z * z.conj()).re - z.norm_sqr()).abs() < EPS);
    }

    #[test]
    fn assign_ops() {
        let mut z = Complex64::new(1.0, 1.0);
        z += Complex64::ONE;
        z -= Complex64::I;
        z *= Complex64::new(2.0, 0.0);
        z /= Complex64::new(2.0, 0.0);
        assert!((z - Complex64::new(2.0, 0.0)).abs() < EPS);
    }

    #[test]
    fn sum_of_iterator() {
        let total: Complex64 = (0..4).map(|k| Complex64::new(k as f64, 1.0)).sum();
        assert_eq!(total, Complex64::new(6.0, 4.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn nan_and_finite_checks() {
        assert!(Complex64::new(f64::NAN, 0.0).is_nan());
        assert!(!Complex64::ONE.is_nan());
        assert!(Complex64::ONE.is_finite());
        assert!(!Complex64::new(f64::INFINITY, 0.0).is_finite());
    }
}
