//! Error type shared by every solver in this crate.

use std::error::Error;
use std::fmt;

/// Errors produced by the linear-algebra kernels.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NumericsError {
    /// Matrix dimensions do not match the operation (`rows × cols` given).
    DimensionMismatch {
        /// What the caller tried to do.
        op: &'static str,
        /// Dimensions that were expected.
        expected: (usize, usize),
        /// Dimensions that were supplied.
        found: (usize, usize),
    },
    /// A factorization hit a pivot too small to divide by: the matrix is
    /// singular (or numerically so) at the given elimination step.
    Singular {
        /// Elimination step at which the zero pivot appeared.
        step: usize,
    },
    /// Cholesky found a non-positive diagonal: the matrix is not positive
    /// definite.
    NotPositiveDefinite {
        /// Row at which positive definiteness failed.
        row: usize,
    },
    /// The matrix is not square but the operation requires it.
    NotSquare {
        /// Dimensions that were supplied.
        found: (usize, usize),
    },
    /// An index was out of bounds for the matrix shape.
    IndexOutOfBounds {
        /// The offending `(row, col)` index.
        index: (usize, usize),
        /// The matrix shape.
        shape: (usize, usize),
    },
    /// Input slice rows had inconsistent lengths.
    RaggedRows,
    /// A matrix entry (or vector element) was NaN or infinite.
    NonFinite {
        /// What the caller tried to do.
        op: &'static str,
        /// The offending `(row, col)` index (vectors use column 0).
        index: (usize, usize),
    },
    /// The operation observed its [`crate::cancel::CancelToken`] set and
    /// stopped cooperatively (deadline enforcement, not a numeric failure).
    Cancelled {
        /// The kernel that was interrupted.
        op: &'static str,
    },
    /// An iterative solver exhausted its iteration budget without
    /// reaching the requested tolerance.
    DidNotConverge {
        /// The solver that gave up.
        op: &'static str,
        /// Matrix-vector products performed before giving up.
        iterations: usize,
        /// Relative residual `‖b − A·x‖ / ‖b‖` at the final iterate.
        residual: f64,
    },
}

impl fmt::Display for NumericsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericsError::DimensionMismatch { op, expected, found } => write!(
                f,
                "dimension mismatch in {op}: expected {}x{}, found {}x{}",
                expected.0, expected.1, found.0, found.1
            ),
            NumericsError::Singular { step } => {
                write!(f, "matrix is singular at elimination step {step}")
            }
            NumericsError::NotPositiveDefinite { row } => {
                write!(f, "matrix is not positive definite at row {row}")
            }
            NumericsError::NotSquare { found } => {
                write!(f, "matrix must be square, found {}x{}", found.0, found.1)
            }
            NumericsError::IndexOutOfBounds { index, shape } => write!(
                f,
                "index ({}, {}) out of bounds for {}x{} matrix",
                index.0, index.1, shape.0, shape.1
            ),
            NumericsError::RaggedRows => write!(f, "input rows have inconsistent lengths"),
            NumericsError::NonFinite { op, index } => write!(
                f,
                "non-finite value in {op} at ({}, {})",
                index.0, index.1
            ),
            NumericsError::Cancelled { op } => write!(f, "{op} cancelled by deadline"),
            NumericsError::DidNotConverge {
                op,
                iterations,
                residual,
            } => write!(
                f,
                "{op} did not converge after {iterations} iterations (relative residual {residual:.3e})"
            ),
        }
    }
}

impl Error for NumericsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = NumericsError::Singular { step: 3 };
        assert!(e.to_string().contains("singular"));
        assert!(e.to_string().contains('3'));
        let e = NumericsError::NotPositiveDefinite { row: 1 };
        assert!(e.to_string().contains("positive definite"));
        let e = NumericsError::NotSquare { found: (2, 3) };
        assert!(e.to_string().contains("2x3"));
        let e = NumericsError::DimensionMismatch {
            op: "solve",
            expected: (2, 2),
            found: (3, 1),
        };
        assert!(e.to_string().contains("solve"));
        let e = NumericsError::IndexOutOfBounds {
            index: (5, 5),
            shape: (2, 2),
        };
        assert!(e.to_string().contains("out of bounds"));
        assert!(NumericsError::RaggedRows.to_string().contains("inconsistent"));
        let e = NumericsError::NonFinite {
            op: "audit",
            index: (1, 2),
        };
        assert!(e.to_string().contains("non-finite"));
        assert!(e.to_string().contains("(1, 2)"));
        let e = NumericsError::Cancelled { op: "lu factor" };
        assert!(e.to_string().contains("cancelled"));
        assert!(e.to_string().contains("lu factor"));
        let e = NumericsError::DidNotConverge {
            op: "gmres",
            iterations: 500,
            residual: 3.2e-7,
        };
        assert!(e.to_string().contains("did not converge"));
        assert!(e.to_string().contains("500"));
        assert!(e.to_string().contains("3.2"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<NumericsError>();
    }
}
