//! Sparse LU factorization (left-looking Gilbert–Peierls with partial
//! pivoting).
//!
//! This is the "internal sparse solver" role that HSPICE plays in the paper:
//! the whole point of VPEC sparsification is that the MNA matrix of a
//! sparsified model factors dramatically faster than the dense inductively
//! coupled PEEC stamp. The factorization cost here is proportional to
//! floating-point work on *structural* nonzeros plus fill, so a 30 % sparse
//! factor translates directly into the orders-of-magnitude simulation
//! speedups of Tables II–III and Fig. 8.

use crate::{CsrMatrix, NumericsError, Scalar};

/// Sparse LU factors of a square matrix, `P·A = L·U`.
///
/// # Example
///
/// ```
/// use vpec_numerics::{CooMatrix, SparseLu};
///
/// # fn main() -> Result<(), vpec_numerics::NumericsError> {
/// let mut a = CooMatrix::new(2, 2);
/// a.push(0, 0, 2.0)?;
/// a.push(0, 1, 1.0)?;
/// a.push(1, 1, 4.0)?;
/// let lu = SparseLu::new(&a.to_csr())?;
/// let x = lu.solve(&[3.0, 4.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SparseLu<T = f64> {
    n: usize,
    /// L columns: `(original_row, value)` below-diagonal entries (unit diag
    /// implicit). Row indices are *original* (unpermuted) row numbers.
    l_cols: Vec<Vec<(usize, T)>>,
    /// U columns: `(pivot_position, value)` entries strictly above the
    /// diagonal, in pivot-position numbering.
    u_cols: Vec<Vec<(usize, T)>>,
    /// U diagonal by column.
    u_diag: Vec<T>,
    /// `pinv[original_row] = pivot position`.
    pinv: Vec<usize>,
}

const UNPIVOTED: usize = usize::MAX;

impl<T: Scalar> SparseLu<T> {
    /// Factors a square CSR matrix with partial (threshold = 1.0, i.e.
    /// full partial) pivoting.
    ///
    /// # Errors
    ///
    /// * [`NumericsError::NotSquare`] if the matrix is not square.
    /// * [`NumericsError::Singular`] if some column has no usable pivot.
    pub fn new(a: &CsrMatrix<T>) -> Result<Self, NumericsError> {
        if a.rows() != a.cols() {
            return Err(NumericsError::NotSquare {
                found: (a.rows(), a.cols()),
            });
        }
        let n = a.rows();
        // Column access: rows of the transpose are columns of A.
        let at = a.transpose();

        let mut l_cols: Vec<Vec<(usize, T)>> = Vec::with_capacity(n);
        let mut u_cols: Vec<Vec<(usize, T)>> = Vec::with_capacity(n);
        let mut u_diag: Vec<T> = Vec::with_capacity(n);
        let mut pinv = vec![UNPIVOTED; n];

        // Dense workspaces reused across columns.
        let mut x = vec![T::zero(); n];
        let mut mark = vec![usize::MAX; n];
        let mut topo: Vec<usize> = Vec::with_capacity(n);
        // DFS stack of (node, next-child-cursor).
        let mut stack: Vec<(usize, usize)> = Vec::with_capacity(n);

        for j in 0..n {
            // ---- Symbolic: reach of A[:,j]'s pattern through L's graph ----
            topo.clear();
            let (a_rows, a_vals) = at.row(j);
            for &r0 in a_rows {
                if mark[r0] == j {
                    continue;
                }
                stack.push((r0, 0));
                mark[r0] = j;
                while let Some(&(r, cursor)) = stack.last() {
                    let k = pinv[r];
                    let nchildren = if k == UNPIVOTED { 0 } else { l_cols[k].len() };
                    let mut descended = false;
                    let mut c = cursor;
                    while c < nchildren {
                        let child = l_cols[k][c].0;
                        c += 1;
                        if mark[child] != j {
                            mark[child] = j;
                            stack.last_mut().expect("stack nonempty").1 = c;
                            stack.push((child, 0));
                            descended = true;
                            break;
                        }
                    }
                    if !descended {
                        // All children visited: pop to post-order.
                        topo.push(r);
                        stack.pop();
                    }
                }
            }
            // `topo` is in post-order: dependencies appear before dependents
            // must be processed in *reverse* post-order for elimination?
            // Post-order guarantees every child is pushed before its parent,
            // so eliminating in reverse (parents first) is wrong; we need
            // children (earlier pivots) applied before... The elimination
            // order required is topological: a pivoted node k must be
            // processed before any node reachable from it. Reverse
            // post-order gives exactly that ordering.
            //
            // ---- Numeric: scatter and eliminate ----
            for (&r, &v) in a_rows.iter().zip(a_vals.iter()) {
                x[r] = v;
            }
            for &r in topo.iter().rev() {
                let k = pinv[r];
                if k == UNPIVOTED {
                    continue;
                }
                let xr = x[r];
                if xr.is_zero() {
                    continue;
                }
                for &(i, lv) in &l_cols[k] {
                    x[i] -= lv * xr;
                }
            }

            // ---- Pivot selection among unpivoted rows in the pattern ----
            let mut pivot_row = UNPIVOTED;
            let mut pivot_mag = 0.0f64;
            for &r in &topo {
                if pinv[r] == UNPIVOTED {
                    let mag = x[r].modulus();
                    if mag > pivot_mag {
                        pivot_mag = mag;
                        pivot_row = r;
                    }
                }
            }
            if pivot_row == UNPIVOTED || pivot_mag == 0.0 {
                return Err(NumericsError::Singular { step: j });
            }
            let pivot_val = x[pivot_row];
            pinv[pivot_row] = j;

            // ---- Gather U (pivoted rows) and L (unpivoted rows) ----
            let mut ucol: Vec<(usize, T)> = Vec::new();
            let mut lcol: Vec<(usize, T)> = Vec::new();
            for &r in &topo {
                let v = x[r];
                x[r] = T::zero();
                if v.is_zero() {
                    continue;
                }
                let k = pinv[r];
                if r == pivot_row {
                    // Diagonal handled separately.
                } else if k == UNPIVOTED {
                    lcol.push((r, v / pivot_val));
                } else {
                    ucol.push((k, v));
                }
            }
            u_diag.push(pivot_val);
            u_cols.push(ucol);
            l_cols.push(lcol);
        }

        Ok(SparseLu {
            n,
            l_cols,
            u_cols,
            u_diag,
            pinv,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Total stored nonzeros in L and U (including diagonals) — the fill-in
    /// measure used by the complexity-scaling experiment.
    pub fn factor_nnz(&self) -> usize {
        self.n
            + self.n
            + self.l_cols.iter().map(Vec::len).sum::<usize>()
            + self.u_cols.iter().map(Vec::len).sum::<usize>()
    }

    /// Solves `A·x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] if `b.len() != dim()`.
    pub fn solve(&self, b: &[T]) -> Result<Vec<T>, NumericsError> {
        let mut y = Vec::with_capacity(self.n);
        self.solve_into(b, &mut y)?;
        Ok(y)
    }

    /// Solves `A·x = b` into a caller-owned buffer, reusing its capacity
    /// (the transient loop's per-step path — no allocation once warm).
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] if `b.len() != dim()`.
    pub fn solve_into(&self, b: &[T], y: &mut Vec<T>) -> Result<(), NumericsError> {
        if b.len() != self.n {
            return Err(NumericsError::DimensionMismatch {
                op: "sparse lu solve",
                expected: (self.n, 1),
                found: (b.len(), 1),
            });
        }
        // y = P·b
        y.clear();
        y.resize(self.n, T::zero());
        for (r, &v) in b.iter().enumerate() {
            y[self.pinv[r]] = v;
        }
        // Forward: L·z = y (unit diagonal).
        for k in 0..self.n {
            let yk = y[k];
            if yk.is_zero() {
                continue;
            }
            for &(orig_row, lv) in &self.l_cols[k] {
                y[self.pinv[orig_row]] -= lv * yk;
            }
        }
        // Backward: U·x = z, U stored by column.
        for j in (0..self.n).rev() {
            let xj = y[j] / self.u_diag[j];
            y[j] = xj;
            if xj.is_zero() {
                continue;
            }
            for &(k, uv) in &self.u_cols[j] {
                y[k] -= uv * xj;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CooMatrix, DenseMatrix, LuFactor};

    fn csr_from_dense(d: &DenseMatrix<f64>) -> CsrMatrix<f64> {
        CsrMatrix::from_dense(d, 0.0)
    }

    #[test]
    fn solves_small_sparse_system() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 4.0).unwrap();
        coo.push(0, 1, -1.0).unwrap();
        coo.push(1, 0, -1.0).unwrap();
        coo.push(1, 1, 4.0).unwrap();
        coo.push(1, 2, -1.0).unwrap();
        coo.push(2, 1, -1.0).unwrap();
        coo.push(2, 2, 4.0).unwrap();
        let a = coo.to_csr();
        let lu = SparseLu::new(&a).unwrap();
        let b = [1.0, 2.0, 3.0];
        let x = lu.solve(&b).unwrap();
        let back = a.matvec(&x).unwrap();
        for (u, v) in back.iter().zip(b.iter()) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn matches_dense_lu_on_random_band_matrix() {
        // Deterministic pseudo-random band matrix with dominant diagonal.
        let n = 40;
        let mut seed = 12345u64;
        let mut rng = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut d = DenseMatrix::<f64>::zeros(n, n);
        for i in 0..n {
            for j in i.saturating_sub(3)..(i + 4).min(n) {
                d[(i, j)] = rng();
            }
            d[(i, i)] += 8.0;
        }
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let xd = LuFactor::new(&d).unwrap().solve(&b).unwrap();
        let xs = SparseLu::new(&csr_from_dense(&d)).unwrap().solve(&b).unwrap();
        for (u, v) in xd.iter().zip(xs.iter()) {
            assert!((u - v).abs() < 1e-10, "dense {u} vs sparse {v}");
        }
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // MNA matrices routinely have structural zeros on the diagonal
        // (voltage-source branch rows); partial pivoting must cope.
        let d = DenseMatrix::from_rows(&[
            &[0.0, 1.0, 0.0],
            &[1.0, 0.0, 2.0],
            &[0.0, 2.0, 1.0],
        ])
        .unwrap();
        let lu = SparseLu::new(&csr_from_dense(&d)).unwrap();
        let b = [1.0, 3.0, 3.0];
        let x = lu.solve(&b).unwrap();
        let back = d.matvec(&x).unwrap();
        for (u, v) in back.iter().zip(b.iter()) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn singular_detected() {
        let d = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(
            SparseLu::new(&csr_from_dense(&d)),
            Err(NumericsError::Singular { .. })
        ));
    }

    #[test]
    fn structurally_singular_detected() {
        // Column 1 completely empty.
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(1, 0, 1.0).unwrap();
        assert!(matches!(
            SparseLu::new(&coo.to_csr()),
            Err(NumericsError::Singular { .. })
        ));
    }

    #[test]
    fn non_square_rejected() {
        let coo = CooMatrix::<f64>::new(2, 3);
        assert!(matches!(
            SparseLu::new(&coo.to_csr()),
            Err(NumericsError::NotSquare { .. })
        ));
    }

    #[test]
    fn rhs_length_checked() {
        let mut coo = CooMatrix::new(1, 1);
        coo.push(0, 0, 1.0).unwrap();
        let lu = SparseLu::new(&coo.to_csr()).unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn fill_in_is_tracked() {
        let mut coo = CooMatrix::new(3, 3);
        for i in 0..3 {
            coo.push(i, i, 2.0).unwrap();
        }
        coo.push(0, 2, 1.0).unwrap();
        coo.push(2, 0, 1.0).unwrap();
        let lu = SparseLu::new(&coo.to_csr()).unwrap();
        assert!(lu.factor_nnz() >= 5 + 3); // at least structure + diagonals
        assert_eq!(lu.dim(), 3);
    }

    #[test]
    fn complex_sparse_solve() {
        use crate::Complex64;
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, Complex64::new(1.0, 1.0)).unwrap();
        coo.push(0, 1, Complex64::I).unwrap();
        coo.push(1, 1, Complex64::new(2.0, 0.0)).unwrap();
        let a = coo.to_csr();
        let lu = SparseLu::new(&a).unwrap();
        let b = [Complex64::new(1.0, 2.0), Complex64::new(4.0, 0.0)];
        let x = lu.solve(&b).unwrap();
        let back = a.matvec(&x).unwrap();
        for (u, v) in back.iter().zip(b.iter()) {
            assert!((*u - *v).abs() < 1e-12);
        }
    }
}
