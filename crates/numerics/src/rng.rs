//! A tiny deterministic PRNG (xorshift64*) for randomized tests and
//! fault-injection experiments.
//!
//! The workspace builds offline with no third-party crates, so the
//! property-style tests that previously used `proptest`/`rand` draw
//! their inputs from this generator instead. It is **not**
//! cryptographically secure and is not meant for statistics — it exists
//! to produce reproducible, well-spread test inputs from a fixed seed.

/// Deterministic xorshift64* pseudo-random generator.
///
/// ```
/// use vpec_numerics::rng::XorShift64;
/// let mut a = XorShift64::new(42);
/// let mut b = XorShift64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from a seed. A zero seed (the one fixed point
    /// of the xorshift map) is replaced by an arbitrary odd constant.
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[lo, hi)`. `hi` must exceed `lo`.
    ///
    /// # Panics
    ///
    /// Panics if `hi <= lo`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(hi > lo, "empty range");
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }

    /// Fair coin flip with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = XorShift64::new(7);
        let mut b = XorShift64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = XorShift64::new(1);
        let mut b = XorShift64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut g = XorShift64::new(0);
        assert_ne!(g.next_u64(), 0);
    }

    #[test]
    fn f64_range_respected() {
        let mut g = XorShift64::new(3);
        for _ in 0..1000 {
            let v = g.range_f64(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&v));
        }
    }

    #[test]
    fn usize_range_covers_all_values() {
        let mut g = XorShift64::new(11);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[g.range_usize(0, 5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn roughly_uniform() {
        let mut g = XorShift64::new(99);
        let mean: f64 = (0..10_000).map(|_| g.next_f64()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        XorShift64::new(1).range_usize(3, 3);
    }
}
