//! Numerical guardrails: SPD probing, condition estimation, and
//! Tikhonov-regularized solves.
//!
//! These are the primitives behind the fault-tolerant solve pipeline:
//! the circuit layer uses [`condition_estimate`] and [`solve_regularized`]
//! in its factorization fallback chain, and the model layer uses
//! [`spd_probe`] to detect sparsified VPEC models that have numerically
//! lost the passivity guarantees of Theorems 1–2 before they reach a
//! simulator.

use crate::{Cholesky, DenseMatrix, LuFactor, NumericsError};

/// Structural verdict on a (nominally symmetric) matrix, produced by
/// [`spd_probe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpdProbe {
    /// `A = Aᵀ` within the symmetry tolerance.
    pub symmetric: bool,
    /// Cholesky factorization succeeded, i.e. `A ≻ 0`.
    pub positive_definite: bool,
    /// `Aᵢᵢ > Σ_{j≠i} |Aᵢⱼ|` for every row.
    pub strictly_diagonally_dominant: bool,
    /// First row violating strict diagonal dominance (or the Cholesky
    /// pivot row that failed), if any — pinpoints where a repair pass
    /// must act.
    pub first_bad_row: Option<usize>,
}

impl SpdProbe {
    /// `true` iff the matrix is symmetric positive definite — the paper's
    /// passivity criterion (Theorem 1).
    pub fn is_spd(&self) -> bool {
        self.symmetric && self.positive_definite
    }
}

/// Probes `a` for symmetry (within `sym_tol`), positive definiteness
/// (via a Cholesky attempt) and strict diagonal dominance.
///
/// Non-square matrices are reported as failing every property rather
/// than erroring: the probe is a diagnostic, not a validator.
pub fn spd_probe(a: &DenseMatrix<f64>, sym_tol: f64) -> SpdProbe {
    if !a.is_square() {
        return SpdProbe {
            symmetric: false,
            positive_definite: false,
            strictly_diagonally_dominant: false,
            first_bad_row: Some(0),
        };
    }
    let symmetric = a.is_symmetric(sym_tol);
    let n = a.rows();
    let mut first_bad_row = None;
    let mut sdd = true;
    for i in 0..n {
        let off: f64 = (0..n)
            .filter(|&j| j != i)
            .map(|j| a[(i, j)].abs())
            .sum();
        // NaN-safe: a NaN diagonal must count as not dominant.
        // vpec-allow: nan-ordering -- partial order is the point: NaN must compare not-Greater and mark the row not dominant
        if a[(i, i)].partial_cmp(&off) != Some(std::cmp::Ordering::Greater) {
            sdd = false;
            first_bad_row = Some(i);
            break;
        }
    }
    let positive_definite = match Cholesky::new(a) {
        Ok(_) => true,
        Err(NumericsError::NotPositiveDefinite { row }) => {
            if first_bad_row.is_none() {
                first_bad_row = Some(row);
            }
            false
        }
        Err(_) => false,
    };
    SpdProbe {
        symmetric,
        positive_definite,
        strictly_diagonally_dominant: sdd,
        first_bad_row,
    }
}

/// Cheap 1-norm condition estimate `κ₁(A) ≈ ‖A‖₁·‖A⁻¹‖₁` using Hager's
/// power iteration on `A⁻¹` (at most five solve pairs). Returns
/// `f64::INFINITY` when the factorization fails (singular matrix) and
/// `0.0` for an empty matrix.
///
/// The estimate is a lower bound on the true condition number but is
/// almost always within a small factor of it — exactly what the solver
/// fallback chain needs to decide whether a "successful" factorization
/// is trustworthy.
pub fn condition_estimate(a: &DenseMatrix<f64>) -> f64 {
    if !a.is_square() || a.rows() == 0 {
        return 0.0;
    }
    let n = a.rows();
    let norm_a = one_norm(a);
    let (lu, lu_t) = match (LuFactor::new(a), LuFactor::new(&a.transpose())) {
        (Ok(f), Ok(ft)) => (f, ft),
        _ => return f64::INFINITY,
    };
    // Hager's estimator for ‖A⁻¹‖₁.
    let mut x = vec![1.0 / n as f64; n];
    let mut est = 0.0f64;
    for _ in 0..5 {
        let y = match lu.solve(&x) {
            Ok(y) => y,
            Err(_) => return f64::INFINITY,
        };
        let y_norm: f64 = y.iter().map(|v| v.abs()).sum();
        if !y_norm.is_finite() {
            return f64::INFINITY;
        }
        est = est.max(y_norm);
        let xi: Vec<f64> = y
            .iter()
            .map(|&v| if v >= 0.0 { 1.0 } else { -1.0 })
            .collect();
        let z = match lu_t.solve(&xi) {
            Ok(z) => z,
            Err(_) => return f64::INFINITY,
        };
        let (j, z_max) = z
            .iter()
            .enumerate()
            .fold((0usize, 0.0f64), |(bj, bv), (k, &v)| {
                if v.abs() > bv {
                    (k, v.abs())
                } else {
                    (bj, bv)
                }
            });
        let zx: f64 = z.iter().zip(x.iter()).map(|(u, v)| u * v).sum();
        if z_max <= zx {
            break; // converged: the current estimate is Hager's answer
        }
        x = vec![0.0; n];
        x[j] = 1.0;
    }
    norm_a * est
}

fn one_norm(a: &DenseMatrix<f64>) -> f64 {
    let (n, m) = (a.rows(), a.cols());
    (0..m)
        .map(|j| (0..n).map(|i| a[(i, j)].abs()).sum::<f64>())
        .fold(0.0f64, f64::max)
}

/// Solves the Tikhonov-regularized system `(A + ε·I)·x = b` by dense LU
/// with partial pivoting. This is the last stage of the factorization
/// fallback chain: a diagonal shift of `ε` bounds the solution energy
/// and turns an (almost) singular system into a well-posed one at the
/// cost of an `O(ε)` bias.
///
/// # Errors
///
/// * [`NumericsError::NotSquare`] if `a` is not square.
/// * [`NumericsError::DimensionMismatch`] if `b.len() != a.rows()`.
/// * [`NumericsError::Singular`] if even the shifted system is singular
///   (e.g. `ε = 0` on a singular matrix).
pub fn solve_regularized(
    a: &DenseMatrix<f64>,
    b: &[f64],
    epsilon: f64,
) -> Result<Vec<f64>, NumericsError> {
    if !a.is_square() {
        return Err(NumericsError::NotSquare {
            found: (a.rows(), a.cols()),
        });
    }
    let n = a.rows();
    if b.len() != n {
        return Err(NumericsError::DimensionMismatch {
            op: "regularized solve",
            expected: (n, 1),
            found: (b.len(), 1),
        });
    }
    let mut shifted = a.clone();
    for i in 0..n {
        shifted[(i, i)] += epsilon;
    }
    LuFactor::new(&shifted)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd(n: usize) -> DenseMatrix<f64> {
        DenseMatrix::from_fn(n, n, |i, j| {
            if i == j {
                2.0 + i as f64
            } else {
                -0.5 / (1.0 + (i as f64 - j as f64).abs())
            }
        })
    }

    #[test]
    fn probe_confirms_spd() {
        let p = spd_probe(&spd(6), 1e-12);
        assert!(p.symmetric && p.positive_definite && p.strictly_diagonally_dominant);
        assert!(p.is_spd());
        assert_eq!(p.first_bad_row, None);
    }

    #[test]
    fn probe_flags_indefinite_row() {
        let mut a = spd(4);
        a[(2, 2)] = -5.0; // break both dominance and definiteness at row 2
        let p = spd_probe(&a, 1e-12);
        assert!(!p.positive_definite);
        assert!(!p.strictly_diagonally_dominant);
        assert!(!p.is_spd());
        assert_eq!(p.first_bad_row, Some(2));
    }

    #[test]
    fn probe_flags_asymmetry() {
        let mut a = spd(3);
        a[(0, 1)] += 1.0;
        let p = spd_probe(&a, 1e-12);
        assert!(!p.symmetric);
        assert!(!p.is_spd());
    }

    #[test]
    fn probe_rejects_non_square() {
        let a = DenseMatrix::<f64>::zeros(2, 3);
        assert!(!spd_probe(&a, 1e-12).is_spd());
    }

    #[test]
    fn condition_of_identity_is_one() {
        let est = condition_estimate(&DenseMatrix::identity(8));
        assert!((est - 1.0).abs() < 1e-12, "got {est}");
    }

    #[test]
    fn condition_tracks_diagonal_spread() {
        let a = DenseMatrix::from_fn(4, 4, |i, j| {
            if i == j {
                10f64.powi(i as i32)
            } else {
                0.0
            }
        });
        let est = condition_estimate(&a);
        assert!((est - 1e3).abs() / 1e3 < 1e-9, "diag matrix κ₁ = 10³, got {est}");
    }

    #[test]
    fn condition_of_singular_is_infinite() {
        let a = DenseMatrix::<f64>::zeros(3, 3);
        assert_eq!(condition_estimate(&a), f64::INFINITY);
    }

    #[test]
    fn regularized_solve_handles_singular() {
        // Rank-1 singular matrix: plain LU fails, a small shift succeeds.
        let a = DenseMatrix::from_fn(3, 3, |_, _| 1.0);
        assert!(LuFactor::new(&a).is_err());
        let x = solve_regularized(&a, &[1.0, 1.0, 1.0], 1e-6).unwrap();
        assert!(x.iter().all(|v| v.is_finite()));
        // (A + εI)x = b holds.
        for i in 0..3 {
            let mut lhs = 1e-6 * x[i];
            for &xj in &x {
                lhs += xj;
            }
            assert!((lhs - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn regularized_solve_matches_plain_for_well_posed() {
        let a = spd(5);
        let b = [1.0, -2.0, 3.0, -4.0, 5.0];
        let exact = LuFactor::new(&a).unwrap().solve(&b).unwrap();
        let reg = solve_regularized(&a, &b, 0.0).unwrap();
        for (u, v) in exact.iter().zip(reg.iter()) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn regularized_solve_validates_shapes() {
        let a = DenseMatrix::<f64>::zeros(2, 3);
        assert!(solve_regularized(&a, &[1.0, 2.0], 1e-3).is_err());
        let a = DenseMatrix::identity(2);
        assert!(solve_regularized(&a, &[1.0], 1e-3).is_err());
    }
}
