//! Scoped worker-pool primitives for the parallel numerics layer.
//!
//! The workspace is hermetic (no rayon), so this module provides the
//! minimal set of data-parallel building blocks the hot paths need, built
//! on [`std::thread::scope`]:
//!
//! * [`Pool::par_chunks_mut`] — disjoint mutable chunks of a slice
//!   (row-partitioned matrix assembly, row-parallel matmul);
//! * [`Pool::par_map`] / [`Pool::par_map_index`] — independent map over
//!   items or indices (per-column inverses, per-frequency AC solves,
//!   per-filament parasitics);
//! * [`Pool::par_join`] — two-way fork/join;
//! * [`lu_eliminate`] / [`cholesky_eliminate`] — dense eliminations used
//!   by [`crate::LuFactor`] and [`crate::Cholesky`], dispatching between
//!   a serial loop, cache-blocked panel factorizations with four-wide
//!   unrolled trailing updates, and barrier-synchronized striped updates
//!   on the size thresholds of the active [`crate::tune`] profile.
//!
//! # Thread count
//!
//! The worker count comes from, in priority order: a process-wide override
//! ([`set_threads`], used by the CLI `--threads` flag), the `VPEC_THREADS`
//! environment variable, and [`std::thread::available_parallelism`].
//! A count of 1 is a strict serial fallback: every primitive runs inline
//! on the caller's thread with no spawning.
//!
//! # Determinism
//!
//! Every parallel path is **bit-compatible** with its serial counterpart:
//! work is partitioned into units whose per-element arithmetic runs in
//! exactly the serial order, and units write disjoint memory. Results are
//! therefore identical for any thread count (verified by the
//! `par_equivalence` test suite).
//!
//! # Safety
//!
//! The workspace forbids `unsafe_code` everywhere except the striped
//! elimination engine at the bottom of this module, where scoped threads
//! need simultaneous mutable access to *disjoint rows* of one matrix. The
//! `unsafe` surface is one small row-aliasing wrapper ([`SharedRows`])
//! with the protocol documented at the definition site; nothing outside
//! this module can reach it.

use crate::cancel::CancelToken;
use crate::kernel;
use crate::{NumericsError, Scalar};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex, OnceLock};

/// Process-wide thread-count override; 0 means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Default minimum matrix dimension before the eliminations parallelize
/// their trailing updates (the `elim_par_min_dim` fallback of
/// [`crate::tune::TuneProfile`]).
///
/// Below this the coordination traffic of the parallel update dominates
/// the O(n³) arithmetic: `BENCH_perf.json` measured striped-LU "speedups"
/// of 0.07 at n = 96 and 0.30 at n = 224 against the serial loop, so the
/// default crossover sits above both. A measured profile (`VPEC_TUNE`)
/// replaces it with the crossover of the host the process runs on.
pub const ELIM_PAR_MIN_DIM: usize = 256;

/// `true` when [`lu_eliminate`] / [`cholesky_eliminate`] will parallelize
/// trailing-submatrix updates for an `n × n` matrix at this worker count.
/// The dimension threshold comes from the active [`crate::tune`] profile.
pub fn elim_parallel(n: usize, threads: usize) -> bool {
    threads > 1 && n >= crate::tune::current().elim_par_min_dim
}

/// Minimum independent columns (or rows) per worker before the multi-RHS
/// solve, inverse, and matmul paths go parallel — the single tuner-backed
/// source of truth behind the former per-module `*_MIN_COLS_PER_THREAD`
/// constants. Feed it to [`threads_for`].
pub fn par_min_cols() -> usize {
    crate::tune::current().par_min_cols
}

/// The elimination mode [`lu_eliminate`] will pick for an `n × n` matrix
/// at this worker count — `"blocked"`, `"striped"`, or `"serial"`.
/// Exposed so callers can record the chosen mode in trace spans.
pub fn lu_elim_mode(n: usize, threads: usize) -> &'static str {
    if n >= crate::tune::current().lu_block_min_dim {
        "blocked"
    } else if elim_parallel(n, threads) {
        "striped"
    } else {
        "serial"
    }
}

/// The elimination mode [`cholesky_eliminate`] will pick — `"blocked"`,
/// `"striped"`, or `"serial"`.
pub fn cholesky_elim_mode(n: usize, threads: usize) -> &'static str {
    if n >= crate::tune::current().chol_block_min_dim {
        "blocked"
    } else if elim_parallel(n, threads) {
        "striped"
    } else {
        "serial"
    }
}

/// Upper bound on the worker count — far above any sane machine, it only
/// guards against `VPEC_THREADS=1000000` exhausting process resources.
/// Public so the CLI can reject `--threads` values above it at parse time
/// with a clear message instead of clamping silently here.
pub const MAX_WORKERS: usize = 256;

/// Sets a process-wide worker-count override (the CLI `--threads` flag).
///
/// `0` clears the override, restoring the `VPEC_THREADS` /
/// `available_parallelism` resolution.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n.min(MAX_WORKERS), Ordering::Relaxed);
}

fn hardware_threads() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Resolves the effective worker count: [`set_threads`] override first,
/// then the `VPEC_THREADS` environment variable, then
/// [`std::thread::available_parallelism`]. Always at least 1.
pub fn max_threads() -> usize {
    let o = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    if let Ok(v) = std::env::var("VPEC_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n.min(MAX_WORKERS);
            }
        }
    }
    hardware_threads()
}

/// Worker count for a task of `rows` independent row-sized units, keeping
/// at least `min_rows_per_thread` units per worker so tiny problems stay
/// serial (spawn overhead would dominate).
pub fn threads_for(rows: usize, min_rows_per_thread: usize) -> usize {
    let nt = max_threads();
    if nt <= 1 || min_rows_per_thread == 0 {
        return 1;
    }
    (rows / min_rows_per_thread).clamp(1, nt)
}

/// A lightweight handle carrying a worker count. Construction is free —
/// the "pool" spins up scoped workers per operation and joins them before
/// returning, so there is no persistent state to manage and borrowed data
/// can flow into the closures freely.
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool using the globally resolved worker count ([`max_threads`]).
    pub fn global() -> Self {
        Pool {
            threads: max_threads(),
        }
    }

    /// A pool with an explicit worker count (clamped to at least 1).
    /// `Pool::with_threads(1)` is the deterministic serial fallback.
    pub fn with_threads(n: usize) -> Self {
        Pool {
            threads: n.clamp(1, MAX_WORKERS),
        }
    }

    /// A strictly serial pool (equivalent to `with_threads(1)`).
    pub fn serial() -> Self {
        Pool { threads: 1 }
    }

    /// The worker count this pool runs with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to disjoint consecutive chunks of `data`, `chunk_len`
    /// elements each (the last chunk may be shorter). `f` receives the
    /// element offset of the chunk start. Chunks are distributed
    /// round-robin over the workers so triangular per-chunk costs stay
    /// balanced. Serial fallback iterates chunks in order.
    pub fn par_chunks_mut<T, F>(&self, data: &mut [T], chunk_len: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(chunk_len > 0, "chunk_len must be positive");
        if self.threads <= 1 || data.len() <= chunk_len {
            vpec_trace::counter_add("pool.dispatch.serial", 1);
            for (k, c) in data.chunks_mut(chunk_len).enumerate() {
                f(k * chunk_len, c);
            }
            return;
        }
        vpec_trace::counter_add("pool.dispatch.parallel", 1);
        let nt = self.threads.min(data.len().div_ceil(chunk_len));
        let mut lists: Vec<Vec<(usize, &mut [T])>> = (0..nt).map(|_| Vec::new()).collect();
        for (k, c) in data.chunks_mut(chunk_len).enumerate() {
            lists[k % nt].push((k * chunk_len, c));
        }
        let f = &f;
        let parent = vpec_trace::current_span();
        std::thread::scope(|s| {
            for list in lists {
                vpec_trace::record_value("pool.tasks_per_worker", list.len() as f64);
                s.spawn(move || {
                    let _link = vpec_trace::parent_scope(parent);
                    for (off, c) in list {
                        f(off, c);
                    }
                });
            }
        });
    }

    /// Maps `f` over `items`, returning results in item order. `f`
    /// receives `(index, &item)`.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        if self.threads <= 1 || items.len() <= 1 {
            vpec_trace::counter_add("pool.dispatch.serial", 1);
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        vpec_trace::counter_add("pool.dispatch.parallel", 1);
        let n = items.len();
        let mut out: Vec<Option<R>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        // Small chunks, round-robin: balances uneven per-item costs.
        let chunk = n.div_ceil(self.threads * 4).max(1);
        let nt = self.threads.min(n.div_ceil(chunk));
        // Per worker: (element offset, input chunk, output chunk).
        type MapChunk<'a, T, R> = (usize, &'a [T], &'a mut [Option<R>]);
        let mut lists: Vec<Vec<MapChunk<'_, T, R>>> = (0..nt).map(|_| Vec::new()).collect();
        for (k, (ic, oc)) in items.chunks(chunk).zip(out.chunks_mut(chunk)).enumerate() {
            lists[k % nt].push((k * chunk, ic, oc));
        }
        let f = &f;
        let parent = vpec_trace::current_span();
        std::thread::scope(|s| {
            for list in lists {
                vpec_trace::record_value("pool.tasks_per_worker", list.len() as f64);
                s.spawn(move || {
                    let _link = vpec_trace::parent_scope(parent);
                    for (base, ic, oc) in list {
                        for (i, (t, o)) in ic.iter().zip(oc.iter_mut()).enumerate() {
                            *o = Some(f(base + i, t));
                        }
                    }
                });
            }
        });
        out.into_iter()
            .map(|o| o.expect("all chunks were processed"))
            .collect()
    }

    /// Maps `f` over the index range `0..n`, returning results in index
    /// order, without materializing the indices.
    pub fn par_map_index<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if self.threads <= 1 || n <= 1 {
            vpec_trace::counter_add("pool.dispatch.serial", 1);
            return (0..n).map(f).collect();
        }
        vpec_trace::counter_add("pool.dispatch.parallel", 1);
        let mut out: Vec<Option<R>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        let chunk = n.div_ceil(self.threads * 4).max(1);
        let nt = self.threads.min(n.div_ceil(chunk));
        // Per worker: (index offset, output chunk).
        type IndexChunk<'a, R> = (usize, &'a mut [Option<R>]);
        let mut lists: Vec<Vec<IndexChunk<'_, R>>> = (0..nt).map(|_| Vec::new()).collect();
        for (k, oc) in out.chunks_mut(chunk).enumerate() {
            lists[k % nt].push((k * chunk, oc));
        }
        let f = &f;
        let parent = vpec_trace::current_span();
        std::thread::scope(|s| {
            for list in lists {
                vpec_trace::record_value("pool.tasks_per_worker", list.len() as f64);
                s.spawn(move || {
                    let _link = vpec_trace::parent_scope(parent);
                    for (base, oc) in list {
                        for (i, o) in oc.iter_mut().enumerate() {
                            *o = Some(f(base + i));
                        }
                    }
                });
            }
        });
        out.into_iter()
            .map(|o| o.expect("all chunks were processed"))
            .collect()
    }

    /// Runs `a` and `b`, possibly concurrently, and returns both results.
    /// `a` runs on the calling thread; panics from `b` are re-raised.
    pub fn par_join<RA, RB>(
        &self,
        a: impl FnOnce() -> RA + Send,
        b: impl FnOnce() -> RB + Send,
    ) -> (RA, RB)
    where
        RA: Send,
        RB: Send,
    {
        if self.threads <= 1 {
            let ra = a();
            let rb = b();
            return (ra, rb);
        }
        let parent = vpec_trace::current_span();
        std::thread::scope(|s| {
            let hb = s.spawn(move || {
                let _link = vpec_trace::parent_scope(parent);
                b()
            });
            let ra = a();
            let rb = match hb.join() {
                Ok(rb) => rb,
                Err(payload) => std::panic::resume_unwind(payload),
            };
            (ra, rb)
        })
    }
}

/// Row-striped in-place LU elimination with partial pivoting over a
/// row-major `n × n` slice. Returns the row permutation (`perm[k]` = the
/// original row now in position `k`) and the permutation sign.
///
/// With `threads == 1` (or a matrix too small to profit) this runs the
/// plain serial right-looking elimination. With more workers, the pivot
/// search and row swap for column `k` run on worker 0 while the others
/// wait at a barrier, then all workers apply the trailing-submatrix update
/// to their stripe of rows (`(i - k - 1) % nt == t`). Per-row arithmetic
/// is identical to the serial loop, so results are bit-identical for any
/// thread count.
///
/// # Errors
///
/// [`NumericsError::Singular`] if a pivot column is exactly zero at or
/// below the diagonal.
///
/// # Panics
///
/// Panics if `data.len() != n * n`.
pub fn lu_eliminate<T: Scalar>(
    data: &mut [T],
    n: usize,
    threads: usize,
) -> Result<(Vec<usize>, f64), NumericsError> {
    lu_eliminate_cancel(data, n, threads, &CancelToken::none())
}

/// [`lu_eliminate`] with cooperative cancellation: the token is polled
/// once per elimination column (serial and striped paths alike) and a set
/// token aborts with [`NumericsError::Cancelled`], leaving `data` in an
/// unspecified partially-eliminated state.
///
/// # Errors
///
/// Same as [`lu_eliminate`], plus [`NumericsError::Cancelled`].
///
/// # Panics
///
/// Panics if `data.len() != n * n`.
pub fn lu_eliminate_cancel<T: Scalar>(
    data: &mut [T],
    n: usize,
    threads: usize,
    cancel: &CancelToken,
) -> Result<(Vec<usize>, f64), NumericsError> {
    assert_eq!(data.len(), n * n, "lu_eliminate: shape mismatch");
    let tune = crate::tune::current();
    // Blocked panel factorization wins once the trailing update is large
    // enough to amortize the panel bookkeeping; its per-element operation
    // sequence matches the serial loop exactly (see the proof sketch at
    // [`lu_eliminate_blocked`]), so the dispatch threshold cannot change
    // results. Workers only parallelize the row-disjoint trailing update,
    // which is bit-identical at any count.
    if n >= tune.lu_block_min_dim {
        vpec_trace::counter_add("pool.elim.blocked", 1);
        let workers = if elim_parallel(n, threads) {
            threads.min(MAX_WORKERS)
        } else {
            1
        };
        return lu_eliminate_blocked(data, n, workers, cancel, tune.panel_width);
    }
    // The striped path needs enough trailing rows per column to amortize
    // barrier traffic; below the tuned `elim_par_min_dim` the serial loop
    // wins outright (see the measurements cited at [`ELIM_PAR_MIN_DIM`]).
    if !elim_parallel(n, threads) {
        vpec_trace::counter_add("pool.elim.serial", 1);
        return lu_eliminate_serial(data, n, cancel);
    }
    vpec_trace::counter_add("pool.elim.striped", 1);
    lu_eliminate_striped(data, n, threads.min(MAX_WORKERS), cancel)
}

/// One trailing-row update of the right-looking LU: computes and stores
/// the multiplier, then `row[k+1..] -= factor · urow[k+1..]`. Shared by
/// the serial and striped paths so their arithmetic is identical.
#[inline]
fn lu_update_row<T: Scalar>(row: &mut [T], urow: &[T], k: usize, pivot: T) {
    let factor = row[k] / pivot;
    row[k] = factor;
    if factor.is_zero() {
        return;
    }
    for (rj, &uj) in row[k + 1..].iter_mut().zip(urow[k + 1..].iter()) {
        *rj -= factor * uj;
    }
}

pub(crate) fn lu_eliminate_serial<T: Scalar>(
    data: &mut [T],
    n: usize,
    cancel: &CancelToken,
) -> Result<(Vec<usize>, f64), NumericsError> {
    let mut perm: Vec<usize> = (0..n).collect();
    let mut perm_sign = 1.0f64;
    for k in 0..n {
        if cancel.is_cancelled() {
            return Err(NumericsError::Cancelled { op: "lu factor" });
        }
        // Partial pivoting: largest modulus in column k at or below row k.
        let mut pivot_row = k;
        let mut pivot_mag = data[k * n + k].modulus();
        for i in (k + 1)..n {
            let mag = data[i * n + k].modulus();
            if mag > pivot_mag {
                pivot_mag = mag;
                pivot_row = i;
            }
        }
        if pivot_mag == 0.0 {
            return Err(NumericsError::Singular { step: k });
        }
        if pivot_row != k {
            perm.swap(k, pivot_row);
            perm_sign = -perm_sign;
            let (a, b) = data.split_at_mut(pivot_row * n);
            a[k * n..k * n + n].swap_with_slice(&mut b[..n]);
        }
        let (top, trailing) = data.split_at_mut((k + 1) * n);
        let urow = &top[k * n..];
        let pivot = urow[k];
        for row in trailing.chunks_mut(n) {
            lu_update_row(row, urow, k, pivot);
        }
    }
    Ok((perm, perm_sign))
}

/// Right-looking blocked LU with partial pivoting: panel factorization of
/// `nb` columns (updates restricted to the panel), then the deferred
/// updates to the remaining columns — U12 rows by ascending elimination
/// step, and the trailing submatrix four steps per sweep ([`kernel::sub4`])
/// with rows distributed over `threads` workers.
///
/// **Bit-identical to [`lu_eliminate_serial`]** (up to the sign of exact
/// zeros): every element receives the same sequence of individually
/// rounded `c -= factor·u` operations in the same ascending-step order —
/// deferring updates to columns outside the panel only reorders
/// operations on *disjoint* elements, and pivot columns live inside the
/// panel so pivot choices coincide. The parallel trailing update
/// partitions whole rows, so results do not depend on the worker count.
///
/// Numerical class: bit-identical.
pub(crate) fn lu_eliminate_blocked<T: Scalar>(
    data: &mut [T],
    n: usize,
    threads: usize,
    cancel: &CancelToken,
    nb: usize,
) -> Result<(Vec<usize>, f64), NumericsError> {
    assert_eq!(data.len(), n * n, "lu_eliminate_blocked: shape mismatch");
    let nb = nb.max(1);
    let pool = Pool::with_threads(threads.max(1));
    let mut perm: Vec<usize> = (0..n).collect();
    let mut perm_sign = 1.0f64;
    let mut p = 0;
    while p < n {
        let pend = (p + nb).min(n);
        // Panel factorization: pivot search and full-row swaps exactly as
        // in the serial loop, rank-1 updates restricted to the panel
        // columns (the rest of each row is updated after the panel).
        for k in p..pend {
            if cancel.is_cancelled() {
                return Err(NumericsError::Cancelled { op: "lu factor" });
            }
            let mut pivot_row = k;
            let mut pivot_mag = data[k * n + k].modulus();
            for i in (k + 1)..n {
                let mag = data[i * n + k].modulus();
                if mag > pivot_mag {
                    pivot_mag = mag;
                    pivot_row = i;
                }
            }
            if pivot_mag == 0.0 {
                return Err(NumericsError::Singular { step: k });
            }
            if pivot_row != k {
                perm.swap(k, pivot_row);
                perm_sign = -perm_sign;
                let (a, b) = data.split_at_mut(pivot_row * n);
                a[k * n..k * n + n].swap_with_slice(&mut b[..n]);
            }
            let (top, trailing) = data.split_at_mut((k + 1) * n);
            let urow = &top[k * n..k * n + pend];
            let pivot = urow[k];
            for row in trailing.chunks_mut(n) {
                lu_update_row(&mut row[..pend], urow, k, pivot);
            }
        }
        if pend == n {
            break;
        }
        // U12: the deferred updates to columns pend..n of the panel rows,
        // applied in ascending elimination-step order (row p needs none).
        for m in (p + 1)..pend {
            let (top, rest) = data.split_at_mut(m * n);
            let row_m = &mut rest[..n];
            for s in p..m {
                let f = row_m[s];
                if f.is_zero() {
                    continue;
                }
                let us = &top[s * n + pend..s * n + n];
                for (c, &u) in row_m[pend..].iter_mut().zip(us) {
                    *c -= f * u;
                }
            }
        }
        // Trailing update: rows pend..n, columns pend..n receive the
        // panel's elimination steps four at a time — one load/store of
        // each output element covers four steps, still in ascending-step
        // order with one rounded operation per term. Rows are independent,
        // so the worker partition cannot affect results.
        let (top, trail) = data.split_at_mut(pend * n);
        let top: &[T] = top;
        let width = pend - p;
        pool.par_chunks_mut(trail, n, |_, row| {
            let (lpart, crow) = row.split_at_mut(pend);
            let lfac = &lpart[p..pend];
            let urow = |s: usize| &top[(p + s) * n + pend..(p + s + 1) * n];
            let mut s = 0;
            while s + 4 <= width {
                let f = [lfac[s], lfac[s + 1], lfac[s + 2], lfac[s + 3]];
                kernel::sub4(crow, f, urow(s), urow(s + 1), urow(s + 2), urow(s + 3));
                s += 4;
            }
            while s < width {
                let f = lfac[s];
                for (c, &u) in crow.iter_mut().zip(urow(s)) {
                    *c -= f * u;
                }
                s += 1;
            }
        });
        p = pend;
    }
    Ok((perm, perm_sign))
}

/// Row-striped in-place Cholesky of a symmetric positive-definite matrix:
/// reads the lower triangle of the row-major `n × n` slice `a` and fills
/// the dense lower-triangular factor into `g` (which must be zeroed).
/// Parallel results are bit-identical to the serial left-looking loop.
///
/// # Errors
///
/// [`NumericsError::NotPositiveDefinite`] if a diagonal pivot is not
/// strictly positive and finite.
///
/// # Panics
///
/// Panics if the slice lengths are not `n * n`.
pub fn cholesky_eliminate(
    a: &[f64],
    g: &mut [f64],
    n: usize,
    threads: usize,
) -> Result<(), NumericsError> {
    cholesky_eliminate_cancel(a, g, n, threads, &CancelToken::none())
}

/// [`cholesky_eliminate`] with cooperative cancellation: the token is
/// polled once per elimination column (serial and striped paths alike)
/// and a set token aborts with [`NumericsError::Cancelled`], leaving `g`
/// partially filled.
///
/// # Errors
///
/// Same as [`cholesky_eliminate`], plus [`NumericsError::Cancelled`].
///
/// # Panics
///
/// Panics if the slice lengths are not `n * n`.
pub fn cholesky_eliminate_cancel(
    a: &[f64],
    g: &mut [f64],
    n: usize,
    threads: usize,
    cancel: &CancelToken,
) -> Result<(), NumericsError> {
    assert_eq!(a.len(), n * n, "cholesky_eliminate: shape mismatch");
    assert_eq!(g.len(), n * n, "cholesky_eliminate: shape mismatch");
    let tune = crate::tune::current();
    // The blocked panel factorization reassociates the left-looking
    // prefix dots (per-block partials, four accumulators), so it is
    // *audited-close* to the serial loop rather than bit-identical — but
    // the dispatch depends only on `n` and the process-wide tune profile,
    // and the row-partitioned trailing update is deterministic for any
    // worker count, so repeated runs and thread sweeps agree exactly.
    if n >= tune.chol_block_min_dim {
        vpec_trace::counter_add("pool.elim.blocked", 1);
        let workers = if elim_parallel(n, threads) {
            threads.min(MAX_WORKERS)
        } else {
            1
        };
        return cholesky_eliminate_blocked(a, g, n, workers, cancel, tune.panel_width);
    }
    if !elim_parallel(n, threads) {
        vpec_trace::counter_add("pool.elim.serial", 1);
        return cholesky_eliminate_serial(a, g, n, cancel);
    }
    vpec_trace::counter_add("pool.elim.striped", 1);
    cholesky_eliminate_striped(a, g, n, threads.min(MAX_WORKERS), cancel)
}

/// Dot of the first `j` entries of two factor rows — the subtracted term
/// of the left-looking Cholesky. Shared by serial and striped paths.
#[inline]
fn chol_partial_dot(gi: &[f64], gj: &[f64], j: usize) -> f64 {
    let mut s = 0.0;
    for (x, y) in gi[..j].iter().zip(gj[..j].iter()) {
        s += x * y;
    }
    s
}

pub(crate) fn cholesky_eliminate_serial(
    a: &[f64],
    g: &mut [f64],
    n: usize,
    cancel: &CancelToken,
) -> Result<(), NumericsError> {
    for j in 0..n {
        if cancel.is_cancelled() {
            return Err(NumericsError::Cancelled { op: "cholesky factor" });
        }
        let gj = &g[j * n..j * n + n];
        let d = a[j * n + j] - chol_partial_dot(gj, gj, j);
        if d <= 0.0 || !d.is_finite() {
            return Err(NumericsError::NotPositiveDefinite { row: j });
        }
        let dj = d.sqrt();
        g[j * n + j] = dj;
        let (top, below) = g.split_at_mut((j + 1) * n);
        let gj = &top[j * n..];
        for (di, gi) in below.chunks_mut(n).enumerate() {
            let i = j + 1 + di;
            let s = a[i * n + j] - chol_partial_dot(gi, gj, j);
            gi[j] = s / dj;
        }
    }
    Ok(())
}

/// Blocked left-looking Cholesky: copies the lower triangle of `a` into
/// `g`, factors `nb`-column panels with block-local prefix dots, then
/// subtracts each finalized panel from the trailing submatrix as
/// four-accumulator row dots ([`kernel::dot4`]) with rows distributed
/// over `threads` workers.
///
/// **Audited-close, not bit-identical**, to [`cholesky_eliminate_serial`]:
/// splitting the prefix dot into per-block partial sums (and `dot4`'s
/// four accumulators) reassociates the floating-point summation. The
/// reassociation is fixed by `n`, `nb`, and the input alone — rows are
/// partitioned whole, so the result is the same for any worker count.
///
/// Numerical class: audited-close.
pub(crate) fn cholesky_eliminate_blocked(
    a: &[f64],
    g: &mut [f64],
    n: usize,
    threads: usize,
    cancel: &CancelToken,
    nb: usize,
) -> Result<(), NumericsError> {
    assert_eq!(a.len(), n * n, "cholesky_eliminate_blocked: shape mismatch");
    assert_eq!(g.len(), n * n, "cholesky_eliminate_blocked: shape mismatch");
    let nb = nb.max(1);
    let pool = Pool::with_threads(threads.max(1));
    // Work in place: seed g's lower triangle with a's, then subtract block
    // contributions as panels finalize. The upper triangle stays zeroed.
    for i in 0..n {
        g[i * n..i * n + i + 1].copy_from_slice(&a[i * n..i * n + i + 1]);
    }
    let mut p = 0;
    while p < n {
        let pend = (p + nb).min(n);
        // Panel: left-looking within the block — contributions of columns
        // < p were already subtracted by earlier trailing updates, so the
        // prefix dots only span the block-local columns p..j.
        for j in p..pend {
            if cancel.is_cancelled() {
                return Err(NumericsError::Cancelled { op: "cholesky factor" });
            }
            let gj = &g[j * n + p..j * n + j];
            let d = g[j * n + j] - kernel::dot4(gj, gj);
            if d <= 0.0 || !d.is_finite() {
                return Err(NumericsError::NotPositiveDefinite { row: j });
            }
            let dj = d.sqrt();
            g[j * n + j] = dj;
            let (top, below) = g.split_at_mut((j + 1) * n);
            let gj = &top[j * n + p..j * n + j];
            for gi in below.chunks_mut(n) {
                let s = gi[j] - kernel::dot4(&gi[p..j], gj);
                gi[j] = s / dj;
            }
        }
        if pend == n {
            break;
        }
        // Trailing update: C[i][j] -= ⟨B_i, B_j⟩ over the panel columns,
        // where B is the finalized factor block (rows pend..n, columns
        // p..pend). Workers write disjoint rows but read each other's B
        // rows, so B is copied out contiguously and shared read-only.
        let width = pend - p;
        let rows = n - pend;
        let mut bpanel = vec![0.0f64; rows * width];
        for r in 0..rows {
            let src = (pend + r) * n + p;
            bpanel[r * width..(r + 1) * width].copy_from_slice(&g[src..src + width]);
        }
        let bp: &[f64] = &bpanel;
        let trail = &mut g[pend * n..];
        pool.par_chunks_mut(trail, n, |off, row| {
            let r = off / n;
            let bi = &bp[r * width..(r + 1) * width];
            for c in 0..=r {
                let bj = &bp[c * width..(c + 1) * width];
                row[pend + c] -= kernel::dot4(bi, bj);
            }
        });
        p = pend;
    }
    Ok(())
}

// ----------------------------------------------------------------------
// Striped elimination engine — the workspace's one unsafe-bearing corner.
// ----------------------------------------------------------------------

/// A row-major matrix view that hands out references to individual rows
/// across scoped worker threads.
///
/// # Safety protocol
///
/// The compiler cannot prove disjointness of row accesses across threads,
/// so callers of [`SharedRows::row`]/[`SharedRows::row_mut`] must uphold,
/// per synchronization phase (phases are separated by [`Barrier::wait`],
/// which establishes the necessary happens-before edges):
///
/// * a row borrowed mutably in a phase is touched by exactly one worker
///   in that phase (the striped partitions below guarantee this), and
/// * a row borrowed shared in a phase is mutably borrowed by no worker in
///   that phase (pivot/factor rows are finalized before being read).
///
/// Both elimination drivers in this module are the only users; the type
/// is private to keep the obligation local.
#[allow(unsafe_code)]
mod shared_rows {
    pub(super) struct SharedRows<T> {
        ptr: *mut T,
        rows: usize,
        cols: usize,
    }

    // SAFETY: the raw pointer refers to a `&mut [T]` that outlives the
    // scope the workers run in; access discipline is documented above.
    unsafe impl<T: Send + Sync> Send for SharedRows<T> {}
    unsafe impl<T: Send + Sync> Sync for SharedRows<T> {}

    impl<T> SharedRows<T> {
        pub(super) fn new(data: &mut [T], rows: usize, cols: usize) -> Self {
            assert_eq!(data.len(), rows * cols, "SharedRows: shape mismatch");
            SharedRows {
                ptr: data.as_mut_ptr(),
                rows,
                cols,
            }
        }

        /// Shared view of row `i`.
        ///
        /// # Safety
        ///
        /// No thread may hold a mutable borrow of row `i` during the
        /// current synchronization phase.
        pub(super) unsafe fn row(&self, i: usize) -> &[T] {
            assert!(i < self.rows, "row index out of range");
            // SAFETY: in-bounds by the assert; aliasing per the protocol.
            unsafe { std::slice::from_raw_parts(self.ptr.add(i * self.cols), self.cols) }
        }

        /// Mutable view of row `i`.
        ///
        /// # Safety
        ///
        /// This thread must be the only one accessing row `i` during the
        /// current synchronization phase.
        #[allow(clippy::mut_from_ref)]
        pub(super) unsafe fn row_mut(&self, i: usize) -> &mut [T] {
            assert!(i < self.rows, "row index out of range");
            // SAFETY: in-bounds by the assert; aliasing per the protocol.
            unsafe { std::slice::from_raw_parts_mut(self.ptr.add(i * self.cols), self.cols) }
        }
    }
}

use shared_rows::SharedRows;

/// Sentinel for "no failure" in the shared failure flags below.
const NO_FAILURE: usize = usize::MAX;

/// Sentinel for "cancelled" in the shared failure flags below: worker 0
/// polls the token during its exclusive pivot phase and publishes this
/// value to stop every worker at the next barrier.
const CANCELLED: usize = usize::MAX - 1;

#[allow(unsafe_code)]
pub(crate) fn lu_eliminate_striped<T: Scalar>(
    data: &mut [T],
    n: usize,
    threads: usize,
    cancel: &CancelToken,
) -> Result<(Vec<usize>, f64), NumericsError> {
    let nt = threads.min(n);
    let shared = SharedRows::new(data, n, n);
    let barrier = Barrier::new(nt);
    let failed = AtomicUsize::new(NO_FAILURE);
    let result: Mutex<Option<(Vec<usize>, f64)>> = Mutex::new(None);

    std::thread::scope(|s| {
        for t in 0..nt {
            let shared = &shared;
            let barrier = &barrier;
            let failed = &failed;
            let result = &result;
            s.spawn(move || {
                let mut perm: Vec<usize> = if t == 0 { (0..n).collect() } else { Vec::new() };
                let mut perm_sign = 1.0f64;
                for k in 0..n {
                    if t == 0 {
                        // SAFETY: every other worker is parked at the
                        // barrier below, so worker 0 has exclusive access
                        // to the matrix during the pivot phase.
                        let mut pivot_row = k;
                        let mut pivot_mag = unsafe { shared.row(k) }[k].modulus();
                        for i in (k + 1)..n {
                            // SAFETY: same exclusivity — workers are still
                            // parked at the barrier during the pivot scan.
                            let mag = unsafe { shared.row(i) }[k].modulus();
                            if mag > pivot_mag {
                                pivot_mag = mag;
                                pivot_row = i;
                            }
                        }
                        if cancel.is_cancelled() {
                            failed.store(CANCELLED, Ordering::Release);
                        } else if pivot_mag == 0.0 {
                            failed.store(k, Ordering::Release);
                        } else if pivot_row != k {
                            perm.swap(k, pivot_row);
                            perm_sign = -perm_sign;
                            // SAFETY: rows k and pivot_row are distinct and
                            // worker 0 is alone in this phase.
                            let ra = unsafe { shared.row_mut(k) };
                            let rb = unsafe { shared.row_mut(pivot_row) };
                            ra.swap_with_slice(rb);
                        }
                    }
                    barrier.wait();
                    if failed.load(Ordering::Acquire) != NO_FAILURE {
                        break;
                    }
                    // Update phase: all workers read the finalized pivot
                    // row and update disjoint stripes of trailing rows.
                    // SAFETY: row k is written by no worker in this phase.
                    let urow = unsafe { shared.row(k) };
                    let pivot = urow[k];
                    let mut i = k + 1 + t;
                    while i < n {
                        // SAFETY: stripe `(i - k - 1) % nt == t` visits
                        // each trailing row from exactly one worker.
                        let row = unsafe { shared.row_mut(i) };
                        lu_update_row(row, urow, k, pivot);
                        i += nt;
                    }
                    barrier.wait();
                }
                if t == 0 {
                    *result.lock().expect("result mutex poisoned") = Some((perm, perm_sign));
                }
            });
        }
    });

    let step = failed.load(Ordering::Acquire);
    if step == CANCELLED {
        return Err(NumericsError::Cancelled { op: "lu factor" });
    }
    if step != NO_FAILURE {
        return Err(NumericsError::Singular { step });
    }
    let (perm, sign) = result
        .into_inner()
        .expect("result mutex poisoned")
        .expect("worker 0 publishes the permutation");
    Ok((perm, sign))
}

#[allow(unsafe_code)]
fn cholesky_eliminate_striped(
    a: &[f64],
    g: &mut [f64],
    n: usize,
    threads: usize,
    cancel: &CancelToken,
) -> Result<(), NumericsError> {
    let nt = threads.min(n);
    let shared = SharedRows::new(g, n, n);
    let barrier = Barrier::new(nt);
    let failed = AtomicUsize::new(NO_FAILURE);

    std::thread::scope(|s| {
        for t in 0..nt {
            let shared = &shared;
            let barrier = &barrier;
            let failed = &failed;
            s.spawn(move || {
                for j in 0..n {
                    if t == 0 {
                        // SAFETY: worker 0 is alone in this phase (the
                        // others are parked at the barrier below); row j's
                        // prefix was finalized in earlier phases.
                        let gj = unsafe { shared.row_mut(j) };
                        let d = a[j * n + j] - chol_partial_dot(gj, gj, j);
                        if cancel.is_cancelled() {
                            failed.store(CANCELLED, Ordering::Release);
                        } else if d <= 0.0 || !d.is_finite() {
                            failed.store(j, Ordering::Release);
                        } else {
                            gj[j] = d.sqrt();
                        }
                    }
                    barrier.wait();
                    if failed.load(Ordering::Acquire) != NO_FAILURE {
                        break;
                    }
                    // SAFETY: row j is finalized; no worker writes it in
                    // this phase.
                    let gj = unsafe { shared.row(j) };
                    let dj = gj[j];
                    let mut i = j + 1 + t;
                    while i < n {
                        // SAFETY: stripe partition — row i is touched by
                        // exactly this worker in this phase. Columns < j
                        // of row i were finalized in earlier phases
                        // (barrier-ordered), column j is written here.
                        let gi = unsafe { shared.row_mut(i) };
                        let s = a[i * n + j] - chol_partial_dot(gi, gj, j);
                        gi[j] = s / dj;
                        i += nt;
                    }
                    barrier.wait();
                }
            });
        }
    });

    let row = failed.load(Ordering::Acquire);
    if row == CANCELLED {
        return Err(NumericsError::Cancelled { op: "cholesky factor" });
    }
    if row != NO_FAILURE {
        return Err(NumericsError::NotPositiveDefinite { row });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::XorShift64;

    #[test]
    fn thread_resolution_is_positive() {
        assert!(max_threads() >= 1);
        assert!(Pool::global().threads() >= 1);
        assert_eq!(Pool::serial().threads(), 1);
        assert_eq!(Pool::with_threads(0).threads(), 1);
        assert_eq!(Pool::with_threads(7).threads(), 7);
    }

    #[test]
    fn threads_for_keeps_small_problems_serial() {
        assert_eq!(threads_for(1, 32), 1);
        assert_eq!(threads_for(10, 32), 1);
        assert!(threads_for(10_000, 32) >= 1);
        assert_eq!(threads_for(100, 0), 1);
    }

    #[test]
    fn par_chunks_mut_matches_serial_fill() {
        let n = 137; // deliberately not a multiple of any chunk size
        let fill = |off: usize, c: &mut [u64]| {
            for (i, v) in c.iter_mut().enumerate() {
                *v = ((off + i) as u64).wrapping_mul(0x9E37_79B9);
            }
        };
        let mut reference = vec![0u64; n];
        Pool::serial().par_chunks_mut(&mut reference, 8, fill);
        for nt in [2, 3, 8] {
            let mut data = vec![0u64; n];
            Pool::with_threads(nt).par_chunks_mut(&mut data, 8, fill);
            assert_eq!(data, reference, "thread count {nt}");
        }
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..101).collect();
        let serial = Pool::serial().par_map(&items, |i, &x| i * 1000 + x * x);
        for nt in [2, 5, 8] {
            let par = Pool::with_threads(nt).par_map(&items, |i, &x| i * 1000 + x * x);
            assert_eq!(par, serial, "thread count {nt}");
        }
    }

    #[test]
    fn par_map_index_matches_map() {
        let serial: Vec<usize> = (0..97).map(|i| i * i).collect();
        for nt in [1, 2, 8] {
            let par = Pool::with_threads(nt).par_map_index(97, |i| i * i);
            assert_eq!(par, serial, "thread count {nt}");
        }
    }

    #[test]
    fn par_join_returns_both() {
        for nt in [1, 4] {
            let (a, b) = Pool::with_threads(nt).par_join(|| 2 + 2, || "ok");
            assert_eq!(a, 4);
            assert_eq!(b, "ok");
        }
    }

    fn random_matrix(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = XorShift64::new(seed);
        let mut m = vec![0.0f64; n * n];
        for v in m.iter_mut() {
            *v = rng.range_f64(-1.0, 1.0);
        }
        // Mildly diagonally weighted to stay comfortably non-singular.
        for i in 0..n {
            m[i * n + i] += 4.0;
        }
        m
    }

    #[test]
    fn striped_lu_is_bit_identical_to_serial() {
        let n = 40; // below ELIM_PAR_MIN_DIM: call the striped path directly
        let reference = {
            let mut m = random_matrix(n, 11);
            let pp = lu_eliminate_serial(&mut m, n, &CancelToken::none()).unwrap();
            (m, pp)
        };
        for nt in [2, 3, 8] {
            let mut m = random_matrix(n, 11);
            let pp = lu_eliminate_striped(&mut m, n, nt, &CancelToken::none()).unwrap();
            assert_eq!(m, reference.0, "LU payload differs at nt={nt}");
            assert_eq!(pp, reference.1, "permutation differs at nt={nt}");
        }
    }

    #[test]
    fn striped_lu_detects_singularity() {
        let n = 8;
        let mut m = vec![0.0f64; n * n]; // all-zero: singular at step 0
        match lu_eliminate_striped(&mut m, n, 4, &CancelToken::none()) {
            Err(NumericsError::Singular { step }) => assert_eq!(step, 0),
            other => panic!("expected Singular, got {other:?}"),
        }
    }

    fn random_spd(n: usize, seed: u64) -> Vec<f64> {
        // A·Aᵀ + n·I is s.p.d. for any A.
        let a = random_matrix(n, seed);
        let mut m = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += a[i * n + k] * a[j * n + k];
                }
                m[i * n + j] = s;
            }
            m[i * n + i] += n as f64;
        }
        m
    }

    #[test]
    fn striped_cholesky_is_bit_identical_to_serial() {
        let n = 36;
        let a = random_spd(n, 5);
        let mut reference = vec![0.0f64; n * n];
        cholesky_eliminate_serial(&a, &mut reference, n, &CancelToken::none()).unwrap();
        for nt in [2, 3, 8] {
            let mut g = vec![0.0f64; n * n];
            cholesky_eliminate_striped(&a, &mut g, n, nt, &CancelToken::none()).unwrap();
            assert_eq!(g, reference, "Cholesky differs at nt={nt}");
        }
    }

    #[test]
    fn striped_cholesky_rejects_indefinite() {
        let n = 6;
        let mut a = vec![0.0f64; n * n];
        for i in 0..n {
            a[i * n + i] = 1.0;
        }
        a[2 * n + 2] = -1.0; // indefinite
        let mut g = vec![0.0f64; n * n];
        match cholesky_eliminate_striped(&a, &mut g, n, 3, &CancelToken::none()) {
            Err(NumericsError::NotPositiveDefinite { row }) => assert_eq!(row, 2),
            other => panic!("expected NotPositiveDefinite, got {other:?}"),
        }
    }

    #[test]
    fn blocked_lu_is_bit_identical_to_serial() {
        // Sizes straddle panel boundaries (multiples, off-by-one, below
        // one panel) and worker counts cover serial/parallel trailing
        // updates; every combination must reproduce the serial bits.
        for n in [5, 31, 32, 33, 64, 97] {
            let reference = {
                let mut m = random_matrix(n, 23);
                let pp = lu_eliminate_serial(&mut m, n, &CancelToken::none()).unwrap();
                (m, pp)
            };
            for nb in [4, 8, 32] {
                for nt in [1, 2, 8] {
                    let mut m = random_matrix(n, 23);
                    let pp =
                        lu_eliminate_blocked(&mut m, n, nt, &CancelToken::none(), nb).unwrap();
                    assert_eq!(m, reference.0, "LU payload differs at n={n} nb={nb} nt={nt}");
                    assert_eq!(pp, reference.1, "permutation differs at n={n} nb={nb} nt={nt}");
                }
            }
        }
    }

    #[test]
    fn blocked_lu_detects_singularity() {
        let n = 12;
        let mut m = vec![0.0f64; n * n];
        match lu_eliminate_blocked(&mut m, n, 2, &CancelToken::none(), 4) {
            Err(NumericsError::Singular { step }) => assert_eq!(step, 0),
            other => panic!("expected Singular, got {other:?}"),
        }
    }

    #[test]
    fn blocked_cholesky_is_close_to_serial_and_thread_invariant() {
        for n in [6, 33, 64, 97] {
            let a = random_spd(n, 17);
            let mut reference = vec![0.0f64; n * n];
            cholesky_eliminate_serial(&a, &mut reference, n, &CancelToken::none()).unwrap();
            let mut base = vec![0.0f64; n * n];
            cholesky_eliminate_blocked(&a, &mut base, n, 1, &CancelToken::none(), 8).unwrap();
            // Audited-close to serial: the blocked panels reassociate the
            // prefix dots, so compare against a scaled tolerance.
            let scale = reference.iter().fold(0.0f64, |m, v| m.max(v.abs()));
            for (x, y) in base.iter().zip(&reference) {
                assert!(
                    (x - y).abs() <= 1e-12 * scale.max(1.0),
                    "blocked Cholesky drifted at n={n}: {x} vs {y}"
                );
            }
            // Exactly thread-count- and rerun-invariant.
            for nt in [2, 8] {
                let mut g = vec![0.0f64; n * n];
                cholesky_eliminate_blocked(&a, &mut g, n, nt, &CancelToken::none(), 8).unwrap();
                assert_eq!(g, base, "blocked Cholesky differs at n={n} nt={nt}");
            }
        }
    }

    #[test]
    fn blocked_cholesky_rejects_indefinite() {
        let n = 9;
        let mut a = vec![0.0f64; n * n];
        for i in 0..n {
            a[i * n + i] = 1.0;
        }
        a[4 * n + 4] = -1.0;
        let mut g = vec![0.0f64; n * n];
        match cholesky_eliminate_blocked(&a, &mut g, n, 3, &CancelToken::none(), 4) {
            Err(NumericsError::NotPositiveDefinite { row }) => assert_eq!(row, 4),
            other => panic!("expected NotPositiveDefinite, got {other:?}"),
        }
    }

    #[test]
    fn cancelled_token_aborts_blocked_eliminations() {
        let token = CancelToken::new();
        token.cancel();
        let n = 16;
        let mut m = random_matrix(n, 29);
        assert!(matches!(
            lu_eliminate_blocked(&mut m, n, 2, &token, 4),
            Err(NumericsError::Cancelled { .. })
        ));
        let a = random_spd(n, 29);
        let mut g = vec![0.0f64; n * n];
        assert!(matches!(
            cholesky_eliminate_blocked(&a, &mut g, n, 2, &token, 4),
            Err(NumericsError::Cancelled { .. })
        ));
    }

    #[test]
    fn public_eliminators_dispatch_serial_below_threshold() {
        // n < ELIM_PAR_MIN_DIM must take the serial path even with
        // threads > 1.
        let n = 12;
        let mut m = random_matrix(n, 3);
        let mut m2 = m.clone();
        let a = lu_eliminate(&mut m, n, 8).unwrap();
        let b = lu_eliminate_serial(&mut m2, n, &CancelToken::none()).unwrap();
        assert_eq!(m, m2);
        assert_eq!(a, b);
    }

    #[test]
    fn cancelled_token_aborts_eliminations() {
        let token = CancelToken::new();
        token.cancel();
        let n = 12;
        let mut m = random_matrix(n, 7);
        assert!(matches!(
            lu_eliminate_cancel(&mut m, n, 1, &token),
            Err(NumericsError::Cancelled { .. })
        ));
        let mut m = random_matrix(n, 7);
        assert!(matches!(
            lu_eliminate_striped(&mut m, n, 3, &token),
            Err(NumericsError::Cancelled { .. })
        ));
        let a = random_spd(n, 7);
        let mut g = vec![0.0f64; n * n];
        assert!(matches!(
            cholesky_eliminate_cancel(&a, &mut g, n, 1, &token),
            Err(NumericsError::Cancelled { .. })
        ));
        let mut g = vec![0.0f64; n * n];
        assert!(matches!(
            cholesky_eliminate_striped(&a, &mut g, n, 3, &token),
            Err(NumericsError::Cancelled { .. })
        ));
    }
}
