//! Cooperative cancellation for long-running kernels.
//!
//! The batch engine enforces wall-clock deadlines with a watchdog thread
//! that cannot preempt a compute thread mid-kernel; instead it flips a
//! shared flag and the kernels check it at natural phase boundaries (one
//! elimination column, one inverse column, one transient step, one AC
//! frequency point). A [`CancelToken`] is that flag: cheap to clone, cheap
//! to poll, and free when disarmed — the common single-shot CLI path
//! carries [`CancelToken::none`] and pays one `Option` branch per check.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag polled cooperatively by long kernels.
///
/// Disarmed tokens ([`CancelToken::none`], also the `Default`) never
/// report cancellation and carry no allocation.
///
/// # Example
///
/// ```
/// use vpec_numerics::cancel::CancelToken;
///
/// let t = CancelToken::new();
/// assert!(!t.is_cancelled());
/// let watcher = t.clone();
/// watcher.cancel();
/// assert!(t.is_cancelled());
/// assert!(!CancelToken::none().is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Option<Arc<AtomicBool>>,
}

impl CancelToken {
    /// An armed token, initially not cancelled. Clones share the flag.
    pub fn new() -> Self {
        CancelToken {
            inner: Some(Arc::new(AtomicBool::new(false))),
        }
    }

    /// A disarmed token: never cancelled, no allocation.
    pub fn none() -> Self {
        CancelToken { inner: None }
    }

    /// `true` when this token can ever report cancellation.
    pub fn armed(&self) -> bool {
        self.inner.is_some()
    }

    /// Requests cancellation. No-op on a disarmed token.
    pub fn cancel(&self) {
        if let Some(flag) = &self.inner {
            flag.store(true, Ordering::Release);
        }
    }

    /// Polls the flag. Always `false` for a disarmed token.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        match &self.inner {
            Some(flag) => flag.load(Ordering::Acquire),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_never_cancelled() {
        let t = CancelToken::none();
        assert!(!t.armed());
        t.cancel();
        assert!(!t.is_cancelled());
    }

    #[test]
    fn clones_share_the_flag() {
        let t = CancelToken::new();
        assert!(t.armed());
        let u = t.clone();
        u.cancel();
        assert!(t.is_cancelled() && u.is_cancelled());
    }

    #[test]
    fn default_is_disarmed() {
        assert!(!CancelToken::default().armed());
    }

    #[test]
    fn cancel_crosses_threads() {
        let t = CancelToken::new();
        let u = t.clone();
        std::thread::spawn(move || u.cancel()).join().unwrap();
        assert!(t.is_cancelled());
    }
}
