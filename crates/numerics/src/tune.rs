//! Measuring autotuner for the kernel crossover sizes.
//!
//! The dense kernels dispatch between serial, blocked, and parallel
//! variants on size thresholds. Historically those thresholds were
//! hard-coded constants measured once on a CI host (`ELIM_PAR_MIN_DIM`,
//! three separate `*_MIN_COLS_PER_THREAD` copies, the matmul block
//! sizes); this module replaces them with a [`TuneProfile`] resolved once
//! per process from the `VPEC_TUNE` environment variable:
//!
//! 1. unset / `off` / `default` — the built-in defaults (the old
//!    constants), zero startup cost;
//! 2. `auto` — micro-measure the crossovers at first use (quick mode,
//!    well under a second);
//! 3. a file path — load a profile previously written by `vpec tune`;
//! 4. inline `key=value,key=value` pairs — override individual defaults.
//!
//! An invalid profile never aborts the process: the error is reported on
//! stderr and the defaults apply. `vpec tune [--quick]` runs
//! [`TuneProfile::measure`] explicitly and prints (or writes with `-o`)
//! the profile in the format [`TuneProfile::to_text`] emits, so a
//! deployment can pay the measurement cost once:
//!
//! ```text
//! vpec tune -o vpec.tune     # measure this host
//! VPEC_TUNE=vpec.tune vpec … # every later run loads the profile
//! ```
//!
//! The measurement is honest about parallelism: on a host where
//! [`crate::pool::max_threads`] resolves to 1, the parallel crossovers
//! keep their defaults (they are unreachable) and only the serial
//! blocked/unblocked crossovers are measured.

use crate::cancel::CancelToken;
use crate::pool::{self, Pool};
use crate::rng::XorShift64;
use std::sync::OnceLock;
use std::time::Instant;

/// A threshold meaning "never take this path on this host".
const NEVER: usize = 1 << 20;

/// The crossover sizes the dense kernels dispatch on.
///
/// All values are strictly positive. Sizes are matrix dimensions or
/// column/point counts; see each field. The defaults reproduce the
/// pre-tuner hard-coded constants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TuneProfile {
    /// Minimum independent columns (multi-RHS solves, inverse columns,
    /// matmul output rows, AC-adjacent fan-outs) per worker before those
    /// maps go parallel. Replaces the former `SOLVE_MIN_COLS_PER_THREAD`
    /// / `INVERSE_MIN_COLS_PER_THREAD` / `MATMUL_MIN_ROWS_PER_THREAD`
    /// triplicate (all 64).
    pub par_min_cols: usize,
    /// Minimum matrix dimension before the eliminations parallelize
    /// trailing updates (striped engine or blocked trailing rows).
    pub elim_par_min_dim: usize,
    /// Minimum dimension at which LU takes the blocked panel path.
    pub lu_block_min_dim: usize,
    /// Minimum dimension at which Cholesky takes the blocked panel path.
    pub chol_block_min_dim: usize,
    /// Panel width `nb` of the blocked factorizations.
    pub panel_width: usize,
    /// Minimum AC sweep points per worker before the per-frequency solves
    /// go parallel.
    pub ac_min_points_per_thread: usize,
    /// Minimum matrix dimension before the `auto` solver policy tries the
    /// preconditioned Krylov path ahead of the direct factorizations. The
    /// default sits beyond the largest layout in the tracked crossover
    /// bench (dim 7202), where sparse-direct still wins by orders of
    /// magnitude on the banded bus patterns — `auto` only reaches for
    /// Krylov first at sizes the direct record does not cover; lower it
    /// (or pass `--solver=iterative`) to move the crossover.
    pub iter_min_dim: usize,
    /// GMRES restart length (Krylov subspace dimension per cycle).
    pub iter_restart: usize,
}

impl Default for TuneProfile {
    fn default() -> Self {
        TuneProfile {
            par_min_cols: 64,
            elim_par_min_dim: pool::ELIM_PAR_MIN_DIM,
            lu_block_min_dim: 64,
            chol_block_min_dim: 64,
            panel_width: 32,
            ac_min_points_per_thread: 8,
            iter_min_dim: 16384,
            iter_restart: 64,
        }
    }
}

impl TuneProfile {
    /// Parses a profile from `key = value` lines (a `vpec tune` file) or
    /// comma-separated `key=value` pairs (inline `VPEC_TUNE`). Unlisted
    /// keys keep their defaults; `#` starts a comment.
    ///
    /// # Errors
    ///
    /// A human-readable message for an unknown key, a non-numeric or zero
    /// value, or a malformed pair.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut p = TuneProfile::default();
        for raw in text.split(['\n', ',']) {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (k, v) = line
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got {line:?}"))?;
            let k = k.trim();
            let v: usize = v
                .trim()
                .parse()
                .map_err(|e| format!("bad value for {k}: {e}"))?;
            if v == 0 {
                return Err(format!("{k} must be positive"));
            }
            match k {
                "par_min_cols" => p.par_min_cols = v,
                "elim_par_min_dim" => p.elim_par_min_dim = v,
                "lu_block_min_dim" => p.lu_block_min_dim = v,
                "chol_block_min_dim" => p.chol_block_min_dim = v,
                "panel_width" => p.panel_width = v,
                "ac_min_points_per_thread" => p.ac_min_points_per_thread = v,
                "iter_min_dim" => p.iter_min_dim = v,
                "iter_restart" => p.iter_restart = v,
                other => return Err(format!("unknown tune key {other:?}")),
            }
        }
        Ok(p)
    }

    /// Serializes the profile in the file format [`TuneProfile::parse`]
    /// reads — one `key = value` per line with a comment header.
    pub fn to_text(&self) -> String {
        format!(
            "# vpec tune profile — load with VPEC_TUNE=<this file>\n\
             par_min_cols = {}\n\
             elim_par_min_dim = {}\n\
             lu_block_min_dim = {}\n\
             chol_block_min_dim = {}\n\
             panel_width = {}\n\
             ac_min_points_per_thread = {}\n\
             iter_min_dim = {}\n\
             iter_restart = {}\n",
            self.par_min_cols,
            self.elim_par_min_dim,
            self.lu_block_min_dim,
            self.chol_block_min_dim,
            self.panel_width,
            self.ac_min_points_per_thread,
            self.iter_min_dim,
            self.iter_restart,
        )
    }

    /// Micro-measures the crossovers on this host and returns the
    /// resulting profile. `quick` trades resolution for startup latency
    /// (fewer sizes, fewer repetitions) and is what `VPEC_TUNE=auto`
    /// uses; `vpec tune` without `--quick` runs the full grid.
    ///
    /// Measured quantities:
    ///
    /// * `panel_width` — fastest blocked-LU panel width at a
    ///   representative dimension;
    /// * `lu_block_min_dim` / `chol_block_min_dim` — smallest measured
    ///   dimension where the blocked factorization beats the serial loop
    ///   ("never wins" pins the threshold far above any real matrix);
    /// * with more than one worker available: `par_min_cols` from the
    ///   per-column-solve crossover and `elim_par_min_dim` from the
    ///   striped-vs-serial LU crossover. On a single-core host both keep
    ///   their defaults — they are unreachable there, and measuring them
    ///   would only record scheduler noise.
    ///
    /// `ac_min_points_per_thread` always keeps its default: the cost of
    /// one AC point is workload-dependent (matrix size, solver path), so
    /// a synthetic measurement would be dishonest. Override it in the
    /// profile file if a workload measures differently.
    pub fn measure(quick: bool) -> Self {
        let mut p = TuneProfile::default();
        let reps = if quick { 2 } else { 4 };
        let none = CancelToken::none();

        // Panel width: fastest blocked LU at a representative dimension.
        let n_panel: usize = if quick { 96 } else { 160 };
        let m = tune_matrix(n_panel, 0x7E57_0001);
        let mut best = f64::MAX;
        for nb in [16usize, 32, 64] {
            let t = time_min(reps, || {
                let mut d = m.clone();
                pool::lu_eliminate_blocked(&mut d, n_panel, 1, &none, nb)
                    .expect("tune matrix is nonsingular");
                std::hint::black_box(&d);
            });
            if t < best {
                best = t;
                p.panel_width = nb;
            }
        }

        // Blocked-vs-serial crossovers at the tuned panel width.
        let sizes: &[usize] = if quick {
            &[48, 96]
        } else {
            &[32, 48, 64, 96, 128]
        };
        p.lu_block_min_dim = NEVER;
        for &n in sizes {
            let m = tune_matrix(n, 0x7E57_0002);
            let ts = time_min(reps, || {
                let mut d = m.clone();
                pool::lu_eliminate_serial(&mut d, n, &none).expect("nonsingular");
                std::hint::black_box(&d);
            });
            let tb = time_min(reps, || {
                let mut d = m.clone();
                pool::lu_eliminate_blocked(&mut d, n, 1, &none, p.panel_width)
                    .expect("nonsingular");
                std::hint::black_box(&d);
            });
            if tb <= ts {
                p.lu_block_min_dim = n;
                break;
            }
        }
        p.chol_block_min_dim = NEVER;
        for &n in sizes {
            let a = tune_spd(n, 0x7E57_0003);
            let ts = time_min(reps, || {
                let mut g = vec![0.0f64; n * n];
                pool::cholesky_eliminate_serial(&a, &mut g, n, &none).expect("spd");
                std::hint::black_box(&g);
            });
            let tb = time_min(reps, || {
                let mut g = vec![0.0f64; n * n];
                pool::cholesky_eliminate_blocked(&a, &mut g, n, 1, &none, p.panel_width)
                    .expect("spd");
                std::hint::black_box(&g);
            });
            if tb <= ts {
                p.chol_block_min_dim = n;
                break;
            }
        }

        // Parallel crossovers — only measurable with real workers.
        let nt = pool::max_threads();
        if nt > 1 {
            // Per-column crossover: O(n²) triangular-sweep-shaped columns
            // mapped serially vs over the pool.
            let n: usize = if quick { 96 } else { 128 };
            let m = tune_matrix(n, 0x7E57_0004);
            let mut found = None;
            for cols in [8usize, 16, 32, 64, 128] {
                let ts = time_min(reps, || {
                    for j in 0..cols {
                        std::hint::black_box(col_sweep(&m, n, j));
                    }
                });
                let tp = time_min(reps, || {
                    let v = Pool::with_threads(nt).par_map_index(cols, |j| col_sweep(&m, n, j));
                    std::hint::black_box(v);
                });
                if tp < ts {
                    found = Some((cols / nt).max(1));
                    break;
                }
            }
            p.par_min_cols = found.unwrap_or(NEVER);

            // Striped-elimination crossover: smallest dimension where the
            // barrier-synchronized trailing update beats the serial loop.
            let dims: &[usize] = if quick { &[96, 192] } else { &[96, 160, 256, 384] };
            let mut found = None;
            for &n in dims {
                let m = tune_matrix(n, 0x7E57_0005);
                let ts = time_min(reps, || {
                    let mut d = m.clone();
                    pool::lu_eliminate_serial(&mut d, n, &none).expect("nonsingular");
                    std::hint::black_box(&d);
                });
                let tp = time_min(reps, || {
                    let mut d = m.clone();
                    pool::lu_eliminate_striped(&mut d, n, nt, &none).expect("nonsingular");
                    std::hint::black_box(&d);
                });
                if tp < ts {
                    found = Some(n);
                    break;
                }
            }
            p.elim_par_min_dim = found.unwrap_or(NEVER);
        }
        p
    }
}

static PROFILE: OnceLock<TuneProfile> = OnceLock::new();

/// The process-wide tune profile, resolved once from `VPEC_TUNE` (see the
/// module docs for the resolution order). All kernel dispatch thresholds
/// read this, so the choice of code path is stable for the lifetime of
/// the process.
pub fn current() -> &'static TuneProfile {
    PROFILE.get_or_init(resolve)
}

fn resolve() -> TuneProfile {
    let v = match std::env::var("VPEC_TUNE") {
        Ok(v) => v,
        Err(_) => return TuneProfile::default(),
    };
    let v = v.trim();
    match v {
        "" | "off" | "default" => TuneProfile::default(),
        "auto" => TuneProfile::measure(true),
        inline if inline.contains('=') => match TuneProfile::parse(inline) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("VPEC_TUNE: ignoring invalid inline profile ({e}); using defaults");
                TuneProfile::default()
            }
        },
        path => match std::fs::read_to_string(path) {
            Ok(text) => match TuneProfile::parse(&text) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("VPEC_TUNE: ignoring invalid profile {path} ({e}); using defaults");
                    TuneProfile::default()
                }
            },
            Err(e) => {
                eprintln!("VPEC_TUNE: cannot read {path} ({e}); using defaults");
                TuneProfile::default()
            }
        },
    }
}

/// Best-of-`reps` wall time of `f`.
fn time_min(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Deterministic mildly-diagonally-weighted dense matrix.
fn tune_matrix(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = XorShift64::new(seed);
    let mut m = vec![0.0f64; n * n];
    for v in m.iter_mut() {
        *v = rng.range_f64(-1.0, 1.0);
    }
    for i in 0..n {
        m[i * n + i] += 4.0;
    }
    m
}

/// Deterministic s.p.d. matrix (`A·Aᵀ + n·I`).
fn tune_spd(n: usize, seed: u64) -> Vec<f64> {
    let a = tune_matrix(n, seed);
    let mut m = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut s = 0.0;
            for k in 0..n {
                s += a[i * n + k] * a[j * n + k];
            }
            m[i * n + j] = s;
        }
        m[i * n + i] += n as f64;
    }
    m
}

/// One O(n²) forward-sweep-shaped unit of per-column work: the same shape
/// as a triangular solve column, with no dispatch of its own (the
/// measurement must not recurse into the profile being resolved).
fn col_sweep(m: &[f64], n: usize, j: usize) -> f64 {
    let mut x = vec![0.0f64; n];
    for (i, v) in x.iter_mut().enumerate() {
        *v = 1.0 + ((i + j) % 7) as f64;
    }
    for i in 1..n {
        let row = &m[i * n..i * n + i];
        let mut acc = x[i];
        for (a, b) in row.iter().zip(&x[..i]) {
            acc -= a * b;
        }
        x[i] = acc;
    }
    x[n - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_historic_constants() {
        let p = TuneProfile::default();
        assert_eq!(p.par_min_cols, 64);
        assert_eq!(p.elim_par_min_dim, pool::ELIM_PAR_MIN_DIM);
        assert_eq!(p.lu_block_min_dim, 64);
        assert_eq!(p.chol_block_min_dim, 64);
        assert_eq!(p.panel_width, 32);
        assert_eq!(p.ac_min_points_per_thread, 8);
        assert_eq!(p.iter_min_dim, 16384);
        assert_eq!(p.iter_restart, 64);
    }

    #[test]
    fn parse_roundtrips_to_text() {
        let p = TuneProfile {
            par_min_cols: 17,
            elim_par_min_dim: 300,
            lu_block_min_dim: 48,
            chol_block_min_dim: 80,
            panel_width: 16,
            ac_min_points_per_thread: 3,
            iter_min_dim: 1024,
            iter_restart: 48,
        };
        assert_eq!(TuneProfile::parse(&p.to_text()).unwrap(), p);
    }

    #[test]
    fn parse_accepts_inline_pairs_and_partial_overrides() {
        let p = TuneProfile::parse("panel_width=16, par_min_cols = 32").unwrap();
        assert_eq!(p.panel_width, 16);
        assert_eq!(p.par_min_cols, 32);
        assert_eq!(p.elim_par_min_dim, TuneProfile::default().elim_par_min_dim);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(TuneProfile::parse("panel_width").is_err());
        assert!(TuneProfile::parse("panel_width=zero").is_err());
        assert!(TuneProfile::parse("panel_width=0").is_err());
        assert!(TuneProfile::parse("no_such_key=1").is_err());
    }

    #[test]
    fn quick_measurement_produces_sane_thresholds() {
        let p = TuneProfile::measure(true);
        assert!(p.panel_width == 16 || p.panel_width == 32 || p.panel_width == 64);
        assert!(p.lu_block_min_dim >= 32);
        assert!(p.chol_block_min_dim >= 32);
        assert!(p.par_min_cols >= 1);
        assert!(p.elim_par_min_dim >= 64);
        assert!(p.ac_min_points_per_thread >= 1);
    }

    #[test]
    fn current_is_stable_across_calls() {
        let a = current() as *const TuneProfile;
        let b = current() as *const TuneProfile;
        assert_eq!(a, b);
    }
}
