//! Fill-reducing orderings for sparse factorization.
//!
//! MNA matrices assembled netlist-order interleave node and branch
//! unknowns badly; factoring them directly causes catastrophic fill in the
//! Gilbert–Peierls LU. Reverse Cuthill–McKee (RCM) on the symmetrized
//! pattern clusters each filament's electrical/magnetic unknowns, keeping
//! the factors of sparsified VPEC netlists near-banded — which is where
//! the paper's orders-of-magnitude simulation speedups come from.

use crate::{CsrMatrix, Scalar};

/// Computes a reverse Cuthill–McKee ordering of the symmetrized sparsity
/// pattern of `a`. Returns `perm` such that `perm[new] = old`; every
/// connected component is started from a pseudo-peripheral (minimum-degree)
/// vertex.
pub fn rcm_ordering<T: Scalar>(a: &CsrMatrix<T>) -> Vec<usize> {
    let n = a.rows();
    // Build symmetric adjacency (pattern of A + Aᵀ, no diagonal).
    let at = a.transpose();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, nbrs) in adj.iter_mut().enumerate() {
        let (cols, _) = a.row(i);
        for &j in cols {
            if j != i {
                nbrs.push(j);
            }
        }
        let (cols_t, _) = at.row(i);
        for &j in cols_t {
            if j != i {
                nbrs.push(j);
            }
        }
    }
    for l in adj.iter_mut() {
        l.sort_unstable();
        l.dedup();
    }
    let degree: Vec<usize> = adj.iter().map(Vec::len).collect();

    let mut visited = vec![false; n];
    let mut order: Vec<usize> = Vec::with_capacity(n);
    // Vertices sorted by degree: candidate BFS roots.
    let mut roots: Vec<usize> = (0..n).collect();
    roots.sort_by_key(|&v| degree[v]);

    for &root in &roots {
        if visited[root] {
            continue;
        }
        // BFS, visiting neighbours in increasing-degree order.
        let mut queue = std::collections::VecDeque::new();
        visited[root] = true;
        queue.push_back(root);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            let mut nbrs: Vec<usize> =
                adj[v].iter().copied().filter(|&u| !visited[u]).collect();
            nbrs.sort_by_key(|&u| degree[u]);
            for u in nbrs {
                visited[u] = true;
                queue.push_back(u);
            }
        }
    }
    order.reverse();
    order
}

/// Applies a symmetric permutation: returns `B` with
/// `B[i][j] = A[perm[i]][perm[j]]`.
///
/// # Panics
///
/// Panics if `perm.len() != a.rows()` or the matrix is not square.
pub fn permute_symmetric<T: Scalar>(a: &CsrMatrix<T>, perm: &[usize]) -> CsrMatrix<T> {
    let n = a.rows();
    assert_eq!(n, a.cols(), "symmetric permutation needs a square matrix");
    assert_eq!(perm.len(), n, "permutation length mismatch");
    let mut inv = vec![0usize; n];
    for (new, &old) in perm.iter().enumerate() {
        inv[old] = new;
    }
    let mut coo = crate::CooMatrix::new(n, n);
    for i in 0..n {
        let (cols, vals) = a.row(i);
        for (&j, &v) in cols.iter().zip(vals.iter()) {
            coo.push(inv[i], inv[j], v).expect("indices in range");
        }
    }
    coo.to_csr()
}

/// Bandwidth of a sparse matrix: `max |i − j|` over stored entries. Used
/// to validate that RCM actually tightened the profile.
pub fn bandwidth<T: Scalar>(a: &CsrMatrix<T>) -> usize {
    let mut bw = 0usize;
    for i in 0..a.rows() {
        let (cols, _) = a.row(i);
        for &j in cols {
            bw = bw.max(i.abs_diff(j));
        }
    }
    bw
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    /// A ring graph numbered badly: 0 connects to n-1 (max bandwidth).
    fn ring(n: usize) -> CsrMatrix<f64> {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 4.0).unwrap();
            let j = (i + 1) % n;
            coo.push(i, j, -1.0).unwrap();
            coo.push(j, i, -1.0).unwrap();
        }
        coo.to_csr()
    }

    #[test]
    fn rcm_is_a_permutation() {
        let a = ring(16);
        let p = rcm_ordering(&a);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn rcm_tightens_ring_bandwidth() {
        let a = ring(32);
        assert_eq!(bandwidth(&a), 31);
        let p = rcm_ordering(&a);
        let b = permute_symmetric(&a, &p);
        assert!(
            bandwidth(&b) <= 3,
            "RCM should make a ring near-tridiagonal, got bandwidth {}",
            bandwidth(&b)
        );
    }

    #[test]
    fn permutation_preserves_values() {
        let a = ring(8);
        let p = rcm_ordering(&a);
        let b = permute_symmetric(&a, &p);
        assert_eq!(a.nnz(), b.nnz());
        // Diagonal values travel with the permutation.
        for i in 0..8 {
            assert_eq!(b.get(i, i), 4.0);
        }
        // Row sums are permutation-invariant for a symmetric matrix.
        let row_sum = |m: &CsrMatrix<f64>, i: usize| -> f64 { m.row(i).1.iter().sum() };
        let mut sa: Vec<f64> = (0..8).map(|i| row_sum(&a, i)).collect();
        let mut sb: Vec<f64> = (0..8).map(|i| row_sum(&b, i)).collect();
        sa.sort_by(|x, y| x.total_cmp(y));
        sb.sort_by(|x, y| x.total_cmp(y));
        assert_eq!(sa, sb);
    }

    #[test]
    fn handles_disconnected_components() {
        let mut coo = CooMatrix::new(6, 6);
        for i in 0..6 {
            coo.push(i, i, 1.0).unwrap();
        }
        coo.push(0, 1, 1.0).unwrap();
        coo.push(1, 0, 1.0).unwrap();
        coo.push(4, 5, 1.0).unwrap();
        coo.push(5, 4, 1.0).unwrap();
        let p = rcm_ordering(&coo.to_csr());
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn empty_matrix() {
        let a = CooMatrix::<f64>::new(0, 0).to_csr();
        assert!(rcm_ordering(&a).is_empty());
        assert_eq!(bandwidth(&a), 0);
    }

    #[test]
    fn asymmetric_pattern_is_symmetrized() {
        // Entry only at (0, 3): RCM must still see 0—3 as an edge.
        let mut coo = CooMatrix::new(4, 4);
        for i in 0..4 {
            coo.push(i, i, 1.0).unwrap();
        }
        coo.push(0, 3, 1.0).unwrap();
        let p = rcm_ordering(&coo.to_csr());
        let pos = |v: usize| p.iter().position(|&x| x == v).unwrap();
        // 0 and 3 end up adjacent in the ordering.
        assert!(pos(0).abs_diff(pos(3)) <= 2);
    }
}
