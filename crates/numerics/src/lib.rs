//! Dense and sparse linear-algebra kernels for the VPEC workspace.
//!
//! The VPEC model (Yu & He, *A Provably Passive and Cost-Efficient Model for
//! Inductive Interconnects*) is built on three numeric operations:
//!
//! 1. **Full inversion** of the partial-inductance matrix `L` (dense LU /
//!    Cholesky) to obtain the VPEC circuit matrix `Ĝ = Dₗ L⁻¹ Dₗ`;
//! 2. **Windowed inversion** — many small `b×b` sub-solves — to build the
//!    sparse approximate inverse used by the wVPEC model;
//! 3. **Sparse MNA solves** inside the circuit simulator, in both real
//!    (transient) and complex (AC) arithmetic.
//!
//! This crate provides exactly those kernels, with no third-party
//! dependencies: [`DenseMatrix`], [`LuFactor`], [`Cholesky`], [`CooMatrix`],
//! [`CsrMatrix`], [`SparseLu`], and a [`Complex64`] type with a [`Scalar`]
//! abstraction so the same solver code serves `f64` and complex AC analysis.
//!
//! # Example
//!
//! ```
//! use vpec_numerics::{DenseMatrix, LuFactor};
//!
//! # fn main() -> Result<(), vpec_numerics::NumericsError> {
//! let a = DenseMatrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]])?;
//! let lu = LuFactor::new(&a)?;
//! let x = lu.solve(&[1.0, 2.0])?;
//! assert!((4.0 * x[0] + 1.0 * x[1] - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

// `deny` rather than `forbid`: the striped elimination engine in
// `pool` needs exactly three `#[allow(unsafe_code)]` escape hatches for
// its row-disjoint shared-matrix view (the `shared_rows` module and the
// two striped eliminations; see the safety protocol there). The count is
// pinned by the `unsafe-audit` lint (`vpec lint`) — changing it means
// updating `vpec_analyze::Config::for_workspace` and this comment
// together. Everything else in the workspace still rejects `unsafe`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod cancel;
mod cg;
mod cholesky;
mod complex;
mod dense;
pub mod eigen;
mod error;
pub mod fault;
mod gmres;
mod kernel;
mod lu;
mod operator;
pub mod ordering;
pub mod pool;
mod precond;
pub mod probe;
pub mod rng;
mod scalar;
mod sparse;
mod sparse_lu;
pub mod tune;
mod vector;

pub use cancel::CancelToken;
pub use cg::cg;
pub use cholesky::Cholesky;
pub use complex::Complex64;
pub use dense::DenseMatrix;
pub use error::NumericsError;
pub use fault::FaultInjection;
pub use gmres::{gmres, IterConfig, IterStats};
pub use lu::LuFactor;
pub use operator::LinearOperator;
pub use pool::Pool;
pub use precond::{
    IdentityPreconditioner, Ilu0Preconditioner, IlutPreconditioner, JacobiPreconditioner,
    Preconditioner, WvpecPreconditioner,
};
pub use probe::{condition_estimate, solve_regularized, spd_probe, SpdProbe};
pub use scalar::Scalar;
pub use sparse::{CooMatrix, CsrMatrix};
pub use sparse_lu::SparseLu;
pub use tune::TuneProfile;
pub use vector::{axpy, dot, norm2, norm_inf, scale, sub};
