//! Runtime numerical-correctness audits.
//!
//! The VPEC pipeline's value proposition is *provable* passivity — Ĝ
//! symmetric, positive definite, strictly diagonally dominant (paper
//! §III/§V) — but the proofs assume exact arithmetic and well-formed
//! inputs. This module turns the invariants into cheap runtime validators
//! that run at the boundaries between pipeline layers (extraction → model
//! build → MNA stamp → factor → solve).
//!
//! # Levels
//!
//! Audits are controlled by a process-global [`AuditLevel`]:
//!
//! * **debug builds** default to [`AuditLevel::Full`];
//! * **release builds** default to [`AuditLevel::Off`] (zero overhead: one
//!   relaxed atomic load per gate);
//! * the `VPEC_AUDIT` environment variable (`off`/`basic`/`full`) or the
//!   CLI `--audit[=level]` flag (via [`set_level`]) overrides the default.
//!
//! [`AuditLevel::Basic`] runs the O(n²) structural checks (finiteness,
//! symmetry, diagonal dominance) plus the O(n³) SPD probe at model build;
//! [`AuditLevel::Full`] adds cross-backend solve-consistency checks and
//! solve residual verification.
//!
//! # Violations
//!
//! Every violation carries the offending matrix name, index, and magnitude
//! ([`AuditViolation`]), so a failed audit is actionable rather than a bare
//! panic. Violations are collected into an [`AuditReport`]; enforcement
//! (turning a dirty report into an error) is the caller's choice via
//! [`AuditReport::into_result`]. Strict-diagonal-dominance violations are
//! classified as warnings — Theorem 2 only guarantees dominance on aligned
//! geometries, so a non-dominant Ĝ is suspicious but not necessarily wrong
//! — while finiteness, symmetry, positive-definiteness, residual, and
//! backend-consistency violations are errors.

use crate::{Cholesky, CooMatrix, CsrMatrix, DenseMatrix, LuFactor, Scalar, SparseLu};
use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};

/// How much auditing to perform at pipeline layer boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AuditLevel {
    /// No audits; gates cost one relaxed atomic load.
    Off = 0,
    /// Structural checks (finite / symmetric / dominant) plus the SPD
    /// probe at model-build boundaries.
    Basic = 1,
    /// Everything in `Basic`, plus solve residual verification and
    /// cross-backend solve-consistency checks.
    Full = 2,
}

impl AuditLevel {
    /// Parses a level name as accepted by `VPEC_AUDIT` and `--audit=`.
    pub fn parse(s: &str) -> Option<AuditLevel> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" | "0" => Some(AuditLevel::Off),
            "basic" | "1" => Some(AuditLevel::Basic),
            "full" | "on" | "2" => Some(AuditLevel::Full),
            _ => None,
        }
    }

    /// The built-in default: `Full` in debug builds, `Off` in release.
    pub fn default_for_build() -> AuditLevel {
        if cfg!(debug_assertions) {
            AuditLevel::Full
        } else {
            AuditLevel::Off
        }
    }

    fn from_u8(v: u8) -> AuditLevel {
        match v {
            1 => AuditLevel::Basic,
            2 => AuditLevel::Full,
            _ => AuditLevel::Off,
        }
    }

    /// The level name (`off` / `basic` / `full`).
    pub fn label(self) -> &'static str {
        match self {
            AuditLevel::Off => "off",
            AuditLevel::Basic => "basic",
            AuditLevel::Full => "full",
        }
    }
}

/// Sentinel meaning "not yet resolved from the environment".
const LEVEL_UNSET: u8 = u8::MAX;

static LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNSET);

/// The current process-global audit level.
///
/// On first call the level is resolved from the `VPEC_AUDIT` environment
/// variable, falling back to [`AuditLevel::default_for_build`]; thereafter
/// the cached value is returned (one relaxed atomic load).
pub fn level() -> AuditLevel {
    match LEVEL.load(Ordering::Relaxed) {
        LEVEL_UNSET => {
            let resolved = std::env::var("VPEC_AUDIT")
                .ok()
                .and_then(|s| AuditLevel::parse(&s))
                .unwrap_or_else(AuditLevel::default_for_build);
            LEVEL.store(resolved as u8, Ordering::Relaxed);
            resolved
        }
        v => AuditLevel::from_u8(v),
    }
}

/// Overrides the process-global audit level (CLI `--audit`, tests).
pub fn set_level(l: AuditLevel) {
    LEVEL.store(l as u8, Ordering::Relaxed);
}

/// `true` when the current level is at least `at_least`.
pub fn enabled(at_least: AuditLevel) -> bool {
    level() >= at_least
}

/// Which invariant a validator checked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditCheck {
    /// Every entry is finite (no NaN/∞).
    Finite,
    /// `|a_ij − a_ji|` within tolerance.
    Symmetric,
    /// Cholesky succeeds (symmetric positive definite).
    PositiveDefinite,
    /// `|a_ii| > Σ_{j≠i} |a_ij|` on every row (paper Theorem 2).
    DiagonallyDominant,
    /// Relative solve residual `‖Ax−b‖∞ / (‖A‖∞‖x‖∞ + ‖b‖∞)` within
    /// tolerance.
    SolveResidual,
    /// Sparse LU, dense LU, and Cholesky solutions agree within tolerance.
    BackendConsistency,
}

impl AuditCheck {
    /// Human-readable check name.
    pub fn label(self) -> &'static str {
        match self {
            AuditCheck::Finite => "finiteness",
            AuditCheck::Symmetric => "symmetry",
            AuditCheck::PositiveDefinite => "positive definiteness",
            AuditCheck::DiagonallyDominant => "strict diagonal dominance",
            AuditCheck::SolveResidual => "solve residual",
            AuditCheck::BackendConsistency => "backend consistency",
        }
    }
}

/// A single invariant violation, with enough context to act on.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditViolation {
    /// Name of the offending matrix (e.g. `Ĝ (wvpec-g:8)`).
    pub matrix: String,
    /// Which invariant failed.
    pub check: AuditCheck,
    /// The offending `(row, col)` index, when the failure is localized
    /// (vectors use column 0).
    pub index: Option<(usize, usize)>,
    /// Magnitude of the violation (entry value, asymmetry, dominance
    /// deficit, residual, or backend disagreement — see `check`).
    pub magnitude: f64,
    /// Free-form explanation of what was measured.
    pub detail: String,
}

impl AuditViolation {
    /// `false` for advisory checks (strict diagonal dominance only holds on
    /// Theorem 2's aligned-geometry domain), `true` for hard invariants.
    pub fn is_error(&self) -> bool {
        self.check != AuditCheck::DiagonallyDominant
    }
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} failed {}", self.matrix, self.check.label())?;
        if let Some((i, j)) = self.index {
            write!(f, " at ({i}, {j})")?;
        }
        write!(f, ": {} (magnitude {:.3e})", self.detail, self.magnitude)
    }
}

/// Outcome of auditing one subject (a matrix or a solve).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AuditReport {
    /// What was audited.
    pub subject: String,
    /// How many individual checks ran.
    pub checks_run: usize,
    /// Violations found (errors and warnings; empty = clean).
    pub violations: Vec<AuditViolation>,
}

impl AuditReport {
    /// An empty report for `subject`.
    pub fn new(subject: impl Into<String>) -> Self {
        AuditReport {
            subject: subject.into(),
            checks_run: 0,
            violations: Vec::new(),
        }
    }

    /// Records one check outcome (`None` = passed).
    pub fn record(&mut self, outcome: Option<AuditViolation>) {
        self.checks_run += 1;
        if let Some(v) = outcome {
            vpec_trace::counter_add(
                if v.is_error() {
                    "audit.violations.error"
                } else {
                    "audit.violations.warning"
                },
                1,
            );
            self.violations.push(v);
        }
    }

    /// `true` when no violations at all (errors or warnings) were found.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// `true` when at least one error-severity violation was found.
    pub fn has_errors(&self) -> bool {
        self.violations.iter().any(AuditViolation::is_error)
    }

    /// Folds another report's checks and violations into this one.
    pub fn merge(&mut self, other: AuditReport) {
        self.checks_run += other.checks_run;
        self.violations.extend(other.violations);
    }

    /// One-line summary suitable for CLI diagnostics.
    pub fn summary(&self) -> String {
        if self.is_clean() {
            format!("{}: clean ({} checks)", self.subject, self.checks_run)
        } else {
            let errors = self.violations.iter().filter(|v| v.is_error()).count();
            format!(
                "{}: {} violation(s) ({} error(s)) in {} checks; first: {}",
                self.subject,
                self.violations.len(),
                errors,
                self.checks_run,
                self.violations[0]
            )
        }
    }

    /// Converts to `Err(AuditFailure)` when any error-severity violation
    /// was recorded; warnings alone stay `Ok`.
    ///
    /// # Errors
    ///
    /// [`AuditFailure`] wrapping this report.
    pub fn into_result(self) -> Result<(), AuditFailure> {
        if self.has_errors() {
            Err(AuditFailure(self))
        } else {
            Ok(())
        }
    }
}

/// An audit report promoted to an error (at least one hard violation).
#[derive(Debug, Clone, PartialEq)]
pub struct AuditFailure(pub AuditReport);

impl fmt::Display for AuditFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let first = self
            .0
            .violations
            .iter()
            .find(|v| v.is_error())
            .or_else(|| self.0.violations.first());
        match first {
            Some(v) => {
                write!(f, "{v}")?;
                if self.0.violations.len() > 1 {
                    write!(f, " (+{} more)", self.0.violations.len() - 1)?;
                }
                Ok(())
            }
            None => write!(f, "audit of {} failed", self.0.subject),
        }
    }
}

impl std::error::Error for AuditFailure {}

/// Checks that every entry of `a` is finite.
pub fn check_finite(name: &str, a: &DenseMatrix<f64>) -> Option<AuditViolation> {
    for i in 0..a.rows() {
        for j in 0..a.cols() {
            let v = a[(i, j)];
            if !v.is_finite() {
                return Some(AuditViolation {
                    matrix: name.to_string(),
                    check: AuditCheck::Finite,
                    index: Some((i, j)),
                    magnitude: v,
                    detail: format!("entry is {v}"),
                });
            }
        }
    }
    None
}

/// Checks that every element of slice `v` is finite (column index 0).
pub fn check_finite_slice(name: &str, v: &[f64]) -> Option<AuditViolation> {
    for (i, &x) in v.iter().enumerate() {
        if !x.is_finite() {
            return Some(AuditViolation {
                matrix: name.to_string(),
                check: AuditCheck::Finite,
                index: Some((i, 0)),
                magnitude: x,
                detail: format!("element is {x}"),
            });
        }
    }
    None
}

/// Checks `|a_ij − a_ji| ≤ tol` for every pair, reporting the worst pair.
pub fn check_symmetric(name: &str, a: &DenseMatrix<f64>, tol: f64) -> Option<AuditViolation> {
    if a.rows() != a.cols() {
        return Some(AuditViolation {
            matrix: name.to_string(),
            check: AuditCheck::Symmetric,
            index: None,
            magnitude: f64::INFINITY,
            detail: format!("matrix is {}x{}, not square", a.rows(), a.cols()),
        });
    }
    let mut worst = 0.0f64;
    let mut at = (0, 0);
    for i in 0..a.rows() {
        for j in (i + 1)..a.cols() {
            let d = (a[(i, j)] - a[(j, i)]).abs();
            if d > worst || !d.is_finite() {
                worst = d;
                at = (i, j);
                if !d.is_finite() {
                    break;
                }
            }
        }
    }
    if worst > tol || !worst.is_finite() {
        return Some(AuditViolation {
            matrix: name.to_string(),
            check: AuditCheck::Symmetric,
            index: Some(at),
            magnitude: worst,
            detail: format!(
                "|a[{0},{1}] - a[{1},{0}]| = {worst:.3e} exceeds tol {tol:.3e}",
                at.0, at.1
            ),
        });
    }
    None
}

/// Checks positive definiteness by attempting a Cholesky factorization.
pub fn check_positive_definite(name: &str, a: &DenseMatrix<f64>) -> Option<AuditViolation> {
    match Cholesky::new(a) {
        Ok(_) => None,
        Err(e) => {
            let index = match e {
                crate::NumericsError::NotPositiveDefinite { row } => Some((row, row)),
                _ => None,
            };
            let magnitude = index.map_or(f64::NAN, |(r, _)| a[(r, r)]);
            Some(AuditViolation {
                matrix: name.to_string(),
                check: AuditCheck::PositiveDefinite,
                index,
                magnitude,
                detail: format!("Cholesky failed: {e}"),
            })
        }
    }
}

/// Checks strict diagonal dominance row-by-row (paper Theorem 2),
/// reporting the first violating row with its dominance deficit.
pub fn check_diag_dominant(name: &str, a: &DenseMatrix<f64>) -> Option<AuditViolation> {
    for i in 0..a.rows() {
        let mut off = 0.0f64;
        for j in 0..a.cols() {
            if j != i {
                off += a[(i, j)].abs();
            }
        }
        let diag = a[(i, i)].abs();
        // NaN-safe: anything other than a definite `diag > off` is a
        // violation, including incomparable (NaN) entries.
        // vpec-allow: nan-ordering -- partial order is the point: NaN must compare not-Greater and register as a violation
        if diag.partial_cmp(&off) != Some(std::cmp::Ordering::Greater) {
            return Some(AuditViolation {
                matrix: name.to_string(),
                check: AuditCheck::DiagonallyDominant,
                index: Some((i, i)),
                magnitude: off - diag,
                detail: format!(
                    "row {i}: |diag| = {diag:.3e} does not exceed off-diagonal sum {off:.3e}"
                ),
            });
        }
    }
    None
}

/// Runs the four structural SPD checks (finite, symmetric, positive
/// definite, strictly diagonally dominant) on `a` and collects the
/// outcomes. `sym_tol` is the absolute symmetry tolerance; pass something
/// scaled to the matrix magnitude (e.g. `1e-9 * a.max_abs()`).
pub fn audit_spd_matrix(name: &str, a: &DenseMatrix<f64>, sym_tol: f64) -> AuditReport {
    let mut report = AuditReport::new(name);
    let finite = check_finite(name, a);
    let finite_ok = finite.is_none();
    report.record(finite);
    report.record(check_symmetric(name, a, sym_tol));
    if finite_ok {
        // Cholesky on a NaN-bearing matrix can loop over garbage; skip the
        // expensive probes once finiteness has already failed.
        report.record(check_positive_definite(name, a));
        report.record(check_diag_dominant(name, a));
    }
    report
}

/// Relative residual `‖b − Ax‖∞ / (‖A‖∞‖x‖∞ + ‖b‖∞)` of a proposed
/// solution to `Ax = b`, computed from raw triplets (duplicates summed).
///
/// Returns `f64::INFINITY` when any input is non-finite or the shapes do
/// not line up, so callers can compare against a tolerance without a
/// separate error path. The ∞-norm of `A` is computed from the raw
/// triplet moduli, which over-estimates the norm when entries cancel —
/// conservative for a denominator.
pub fn relative_residual<T: Scalar>(a: &CooMatrix<T>, x: &[T], b: &[T]) -> f64 {
    let n = a.rows();
    if x.len() != n || b.len() != n || a.cols() != x.len() {
        return f64::INFINITY;
    }
    if n == 0 {
        return 0.0;
    }
    // r = b − A·x, accumulated straight from the triplets. `f64::max`
    // swallows NaN, so non-finiteness is tracked explicitly.
    let mut r: Vec<T> = b.to_vec();
    let mut row_norm = vec![0.0f64; n];
    let mut nonfinite = false;
    for &(i, j, v) in a.entries() {
        r[i] -= v * x[j];
        let m = v.modulus();
        nonfinite |= !m.is_finite();
        row_norm[i] += m;
    }
    let inf_norm = |vals: &mut dyn Iterator<Item = f64>| -> (f64, bool) {
        let mut worst = 0.0f64;
        let mut bad = false;
        for m in vals {
            bad |= !m.is_finite();
            worst = worst.max(m);
        }
        (worst, bad)
    };
    let (r_inf, r_bad) = inf_norm(&mut r.iter().map(|v| v.modulus()));
    let (a_inf, _) = inf_norm(&mut row_norm.iter().copied());
    let (x_inf, x_bad) = inf_norm(&mut x.iter().map(|v| v.modulus()));
    let (b_inf, b_bad) = inf_norm(&mut b.iter().map(|v| v.modulus()));
    let denom = a_inf * x_inf + b_inf;
    if nonfinite || r_bad || x_bad || b_bad || !denom.is_finite() {
        return f64::INFINITY;
    }
    if denom == 0.0 {
        // A, x, and b all zero: residual is exactly r_inf (0 for x = 0).
        return r_inf;
    }
    r_inf / denom
}

/// Checks a solve residual against `tol`, returning the measured relative
/// residual alongside any violation.
pub fn check_residual<T: Scalar>(
    name: &str,
    a: &CooMatrix<T>,
    x: &[T],
    b: &[T],
    tol: f64,
) -> (f64, Option<AuditViolation>) {
    let rel = relative_residual(a, x, b);
    let violation = if rel > tol {
        Some(AuditViolation {
            matrix: name.to_string(),
            check: AuditCheck::SolveResidual,
            index: None,
            magnitude: rel,
            detail: format!("relative residual {rel:.3e} exceeds tol {tol:.3e}"),
        })
    } else {
        None
    };
    (rel, violation)
}

/// Result of a cross-backend solve-consistency check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackendAgreement {
    /// How many backends produced a solution (dense LU reference plus
    /// sparse LU, plus Cholesky when the matrix is SPD).
    pub backends: usize,
    /// Worst relative per-element difference against the dense-LU
    /// reference, normalized by `‖x_ref‖∞`.
    pub max_rel_diff: f64,
}

/// Solves `a·x = b` with dense LU (reference), sparse LU, and — when `a`
/// is symmetric positive definite — Cholesky, and compares the solutions.
///
/// Returns the agreement measurement plus a violation when either a
/// backend disagrees beyond `tol` or a backend that should have succeeded
/// failed to factor.
pub fn check_solve_consistency(
    name: &str,
    a: &DenseMatrix<f64>,
    b: &[f64],
    tol: f64,
) -> (Option<BackendAgreement>, Option<AuditViolation>) {
    let mismatch = |detail: String, magnitude: f64, index: Option<(usize, usize)>| AuditViolation {
        matrix: name.to_string(),
        check: AuditCheck::BackendConsistency,
        index,
        magnitude,
        detail,
    };
    let x_ref = match LuFactor::new(a).and_then(|lu| lu.solve(b)) {
        Ok(x) => x,
        Err(e) => {
            return (
                None,
                Some(mismatch(format!("dense LU reference failed: {e}"), f64::NAN, None)),
            )
        }
    };
    let x_ref_inf = x_ref.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    let scale = x_ref_inf.max(f64::MIN_POSITIVE);
    let mut backends = 1usize;
    let mut worst = 0.0f64;
    let mut worst_at: Option<(usize, usize)> = None;
    let mut compare = |x_other: &[f64], label: &str| -> Option<AuditViolation> {
        for (i, (xo, xr)) in x_other.iter().zip(&x_ref).enumerate() {
            let d = (xo - xr).abs() / scale;
            if d > worst || !d.is_finite() {
                worst = d;
                worst_at = Some((i, 0));
            }
            if d > tol || !d.is_finite() {
                return Some(mismatch(
                    format!("{label} disagrees with dense LU: rel diff {d:.3e} at element {i}"),
                    d,
                    Some((i, 0)),
                ));
            }
        }
        None
    };

    let csr = CsrMatrix::from_dense(a, 0.0);
    match SparseLu::new(&csr).and_then(|lu| lu.solve(b)) {
        Ok(x_sparse) => {
            backends += 1;
            if let Some(v) = compare(&x_sparse, "sparse LU") {
                return (Some(BackendAgreement { backends, max_rel_diff: worst }), Some(v));
            }
        }
        Err(e) => {
            return (
                Some(BackendAgreement { backends, max_rel_diff: worst }),
                Some(mismatch(
                    format!("sparse LU failed where dense LU succeeded: {e}"),
                    f64::NAN,
                    None,
                )),
            )
        }
    }

    // Cholesky only applies on the SPD cone; silently skip otherwise.
    if a.is_symmetric(1e-9 * a.max_abs().max(f64::MIN_POSITIVE)) {
        if let Ok(chol) = Cholesky::new(a) {
            if let Ok(x_chol) = chol.solve(b) {
                backends += 1;
                if let Some(v) = compare(&x_chol, "Cholesky") {
                    return (Some(BackendAgreement { backends, max_rel_diff: worst }), Some(v));
                }
            }
        }
    }

    (Some(BackendAgreement { backends, max_rel_diff: worst }), None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> DenseMatrix<f64> {
        DenseMatrix::from_rows(&[
            &[4.0, 1.0, 0.5],
            &[1.0, 5.0, 1.5],
            &[0.5, 1.5, 6.0],
        ])
        .unwrap()
    }

    #[test]
    fn level_parsing_and_ordering() {
        assert_eq!(AuditLevel::parse("off"), Some(AuditLevel::Off));
        assert_eq!(AuditLevel::parse("BASIC"), Some(AuditLevel::Basic));
        assert_eq!(AuditLevel::parse(" full "), Some(AuditLevel::Full));
        assert_eq!(AuditLevel::parse("2"), Some(AuditLevel::Full));
        assert_eq!(AuditLevel::parse("bogus"), None);
        assert!(AuditLevel::Full > AuditLevel::Basic);
        assert!(AuditLevel::Basic > AuditLevel::Off);
        assert_eq!(AuditLevel::Full.label(), "full");
    }

    #[test]
    fn set_level_round_trips() {
        let prior = level();
        set_level(AuditLevel::Basic);
        assert_eq!(level(), AuditLevel::Basic);
        assert!(enabled(AuditLevel::Basic));
        assert!(!enabled(AuditLevel::Full));
        set_level(prior);
    }

    #[test]
    fn clean_spd_matrix_passes_all_checks() {
        let a = spd3();
        let report = audit_spd_matrix("A", &a, 1e-12);
        assert!(report.is_clean(), "{}", report.summary());
        assert_eq!(report.checks_run, 4);
        assert!(report.into_result().is_ok());
    }

    #[test]
    fn nan_entry_is_located() {
        let mut a = spd3();
        a[(1, 2)] = f64::NAN;
        let v = check_finite("A", &a).expect("must flag NaN");
        assert_eq!(v.index, Some((1, 2)));
        assert_eq!(v.check, AuditCheck::Finite);
        assert!(v.is_error());
        assert!(v.to_string().contains("(1, 2)"));
    }

    #[test]
    fn asymmetry_is_located_with_magnitude() {
        let mut a = spd3();
        a[(0, 2)] += 1e-3;
        let v = check_symmetric("A", &a, 1e-9).expect("must flag asymmetry");
        assert_eq!(v.index, Some((0, 2)));
        assert!((v.magnitude - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn non_spd_matrix_is_flagged_actionably() {
        let mut a = spd3();
        a[(2, 2)] = -6.0;
        let report = audit_spd_matrix("G-hat", &a, 1e-12);
        assert!(report.has_errors());
        let v = report
            .violations
            .iter()
            .find(|v| v.check == AuditCheck::PositiveDefinite)
            .expect("SPD violation expected");
        assert_eq!(v.index, Some((2, 2)));
        assert!(v.to_string().contains("G-hat"));
        assert!(report.into_result().is_err());
    }

    #[test]
    fn dominance_violation_is_warning_not_error() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 8.0]]).unwrap();
        let v = check_diag_dominant("A", &a).expect("row 0 not dominant");
        assert_eq!(v.index, Some((0, 0)));
        assert!((v.magnitude - 1.0).abs() < 1e-12);
        assert!(!v.is_error());
        let mut report = AuditReport::new("A");
        report.record(Some(v));
        assert!(!report.is_clean());
        assert!(!report.has_errors());
        assert!(report.into_result().is_ok());
    }

    #[test]
    fn residual_is_small_for_true_solution_and_large_for_garbage() {
        let a = spd3();
        let b = vec![1.0, 2.0, 3.0];
        let x = LuFactor::new(&a).unwrap().solve(&b).unwrap();
        let mut coo = CooMatrix::new(3, 3);
        for i in 0..3 {
            for j in 0..3 {
                coo.push(i, j, a[(i, j)]).unwrap();
            }
        }
        let (rel, violation) = check_residual("solve", &coo, &x, &b, 1e-10);
        assert!(rel < 1e-14, "rel = {rel}");
        assert!(violation.is_none());
        let (rel_bad, violation_bad) = check_residual("solve", &coo, &[1.0, 1.0, 1.0], &b, 1e-10);
        assert!(rel_bad > 1e-2);
        assert!(violation_bad.is_some());
        // Non-finite solution reads as infinite residual, not a panic.
        let (rel_nan, v_nan) = check_residual("solve", &coo, &[f64::NAN, 0.0, 0.0], &b, 1e-10);
        assert!(rel_nan.is_infinite());
        assert!(v_nan.is_some());
    }

    #[test]
    fn backends_agree_on_spd_system() {
        let a = spd3();
        let b = vec![1.0, -2.0, 0.5];
        let (agreement, violation) = check_solve_consistency("A", &a, &b, 1e-9);
        let agreement = agreement.expect("reference solve must succeed");
        assert_eq!(agreement.backends, 3, "dense LU + sparse LU + Cholesky");
        assert!(agreement.max_rel_diff < 1e-10);
        assert!(violation.is_none());
    }

    #[test]
    fn singular_reference_reports_violation_not_panic() {
        let a = DenseMatrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]).unwrap();
        let (agreement, violation) = check_solve_consistency("A", &a, &[1.0, 2.0], 1e-9);
        assert!(agreement.is_none());
        let v = violation.expect("singular reference must be flagged");
        assert_eq!(v.check, AuditCheck::BackendConsistency);
    }

    #[test]
    fn finite_slice_check_locates_element() {
        assert!(check_finite_slice("b", &[0.0, 1.0]).is_none());
        let v = check_finite_slice("b", &[0.0, f64::INFINITY]).expect("must flag");
        assert_eq!(v.index, Some((1, 0)));
    }
}
