//! Preconditioned conjugate gradients for SPD systems.
//!
//! The VPEC circuit matrix `Ĝ = Dₗ L⁻¹ Dₗ` inherits symmetric positive
//! definiteness from `L`, so its solves can use CG: one matvec and one
//! preconditioner application per iteration, three vectors of state, no
//! restart bookkeeping. Convergence is monitored on the normwise
//! backward error of the recurrence residual (see
//! [`IterConfig::rel_tol`]).

use crate::gmres::{IterConfig, IterStats};
use crate::operator::LinearOperator;
use crate::precond::Preconditioner;
use crate::vector::{axpy, dot, norm2};
use crate::NumericsError;

/// Solves the SPD system `A·x = b` by preconditioned CG from `x = 0`.
/// The preconditioner must itself be symmetric positive definite for the
/// method to be well-defined (Jacobi and ILU(0)/IC on an SPD matrix
/// qualify). `cfg.restart` is ignored. As with [`crate::gmres`], an
/// exhausted budget is reported via `stats.converged == false`.
///
/// # Errors
///
/// [`NumericsError::DimensionMismatch`] on shape disagreement;
/// [`NumericsError::NotPositiveDefinite`] when a curvature `pᵀAp ≤ 0`
/// exposes a non-SPD operator (the failing iteration is reported as the
/// row); [`NumericsError::NonFinite`] if the iteration produces NaN/∞.
pub fn cg(
    a: &dyn LinearOperator,
    m: &dyn Preconditioner,
    b: &[f64],
    cfg: &IterConfig,
) -> Result<(Vec<f64>, IterStats), NumericsError> {
    let n = a.dim();
    if b.len() != n || m.dim() != n {
        return Err(NumericsError::DimensionMismatch {
            op: "cg",
            expected: (n, 1),
            found: (b.len().max(m.dim()), 1),
        });
    }
    let bnorm = norm2(b);
    let mut x = vec![0.0; n];
    let mut stats = IterStats::default();
    if bnorm == 0.0 {
        stats.converged = true;
        return Ok((x, stats));
    }
    if !bnorm.is_finite() {
        return Err(NumericsError::NonFinite {
            op: "cg",
            index: (0, 0),
        });
    }

    let anorm = a.norm_inf_est();
    let mut r = b.to_vec();
    let mut z = vec![0.0; n];
    m.apply(&r, &mut z);
    let mut p = z.clone();
    let mut rz = dot(&r, &z);
    let mut ap = vec![0.0; n];
    stats.rel_residual = 1.0;
    while stats.iterations < cfg.max_iters {
        stats.iterations += 1;
        a.apply(&p, &mut ap);
        let pap = dot(&p, &ap);
        if !pap.is_finite() {
            return Err(NumericsError::NonFinite {
                op: "cg",
                index: (stats.iterations, 0),
            });
        }
        if pap <= 0.0 {
            return Err(NumericsError::NotPositiveDefinite {
                row: stats.iterations,
            });
        }
        let alpha = rz / pap;
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &ap, &mut r);
        // Normwise backward error (see `IterConfig::rel_tol`): the plain
        // `‖b‖`-relative residual has an unattainable floor on stiff
        // systems with `‖A‖‖x‖ ≫ ‖b‖`.
        let denom = anorm.map_or(bnorm, |na| na * norm2(&x) + bnorm);
        stats.rel_residual = norm2(&r) / denom;
        if !stats.rel_residual.is_finite() {
            return Err(NumericsError::NonFinite {
                op: "cg",
                index: (stats.iterations, 0),
            });
        }
        if stats.rel_residual <= cfg.rel_tol {
            stats.converged = true;
            break;
        }
        m.apply(&r, &mut z);
        let rz_next = dot(&r, &z);
        let beta = rz_next / rz;
        rz = rz_next;
        for (pi, zi) in p.iter_mut().zip(z.iter()) {
            *pi = zi + beta * *pi;
        }
    }
    Ok((x, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precond::{Ilu0Preconditioner, JacobiPreconditioner};
    use crate::rng::XorShift64;
    use crate::{CooMatrix, CsrMatrix};

    fn spd(n: usize, seed: u64) -> CsrMatrix<f64> {
        // Symmetric, strictly diagonally dominant ⇒ SPD.
        let mut rng = XorShift64::new(seed);
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            let mut offsum = 0.0;
            for j in (i + 1)..(i + 4).min(n) {
                let v = rng.range_f64(-1.0, 1.0);
                coo.push(i, j, v).unwrap();
                coo.push(j, i, v).unwrap();
                offsum += v.abs();
            }
            coo.push(i, i, 3.0 + 2.0 * offsum).unwrap();
        }
        coo.to_csr()
    }

    #[test]
    fn converges_with_jacobi_and_ilu0() {
        let a = spd(64, 0xC6_0001);
        let b: Vec<f64> = (0..64).map(|i| 1.0 + (i as f64 * 0.1).cos()).collect();
        for precond in 0..2 {
            let m: Box<dyn Preconditioner> = if precond == 0 {
                Box::new(JacobiPreconditioner::from_csr(&a).unwrap())
            } else {
                Box::new(Ilu0Preconditioner::from_csr(&a).unwrap())
            };
            let (x, stats) = cg(&a, m.as_ref(), &b, &IterConfig::default()).unwrap();
            assert!(stats.converged, "{}: {stats:?}", m.label());
            let ax = a.matvec(&x).unwrap();
            for (l, r) in ax.iter().zip(b.iter()) {
                assert!((l - r).abs() < 1e-9, "{}", m.label());
            }
        }
    }

    #[test]
    fn indefinite_operator_is_rejected() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(1, 1, -1.0).unwrap();
        let a = coo.to_csr();
        // Jacobi on an indefinite matrix flips the sign back, so drive the
        // curvature test with the identity preconditioner.
        let id = crate::precond::IdentityPreconditioner::new(2);
        let err = cg(&a, &id, &[0.0, 1.0], &IterConfig::default()).unwrap_err();
        assert!(matches!(err, NumericsError::NotPositiveDefinite { .. }));
    }

    #[test]
    fn zero_rhs_short_circuits() {
        let a = spd(8, 1);
        let m = JacobiPreconditioner::from_csr(&a).unwrap();
        let (x, stats) = cg(&a, &m, &[0.0; 8], &IterConfig::default()).unwrap();
        assert!(stats.converged);
        assert_eq!(stats.iterations, 0);
        assert!(x.iter().all(|&v| v == 0.0));
    }
}
