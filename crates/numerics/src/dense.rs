//! Row-major dense matrix used for partial-inductance matrices and their
//! inverses.

use crate::kernel;
use crate::pool::{self, Pool};
use crate::{NumericsError, Scalar};
use std::fmt;
use std::ops::{Index, IndexMut};

/// Row-block height for parallel matmul partitioning.
const MATMUL_ROW_BLOCK: usize = 4;
/// Inner-dimension tile: keeps a band of `B` rows hot in cache while the
/// rows of a block are updated.
const MATMUL_K_BLOCK: usize = 64;

/// A row-major dense matrix over a [`Scalar`] type.
///
/// This is the carrier for the partial-inductance matrix `L`, its inverse
/// `S = L⁻¹`, and the VPEC circuit matrix `Ĝ`. All hot loops in the
/// factorizations index the backing slice directly.
///
/// # Example
///
/// ```
/// use vpec_numerics::DenseMatrix;
///
/// let mut m = DenseMatrix::<f64>::zeros(2, 2);
/// m[(0, 0)] = 1.0;
/// m[(1, 1)] = 2.0;
/// assert_eq!(m.trace(), 3.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct DenseMatrix<T = f64> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> DenseMatrix<T> {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![T::zero(); rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = T::one();
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::RaggedRows`] if the rows have different
    /// lengths.
    pub fn from_rows(rows: &[&[T]]) -> Result<Self, NumericsError> {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        if rows.iter().any(|r| r.len() != ncols) {
            return Err(NumericsError::RaggedRows);
        }
        let mut data = Vec::with_capacity(nrows * ncols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Ok(DenseMatrix {
            rows: nrows,
            cols: ncols,
            data,
        })
    }

    /// Builds a matrix from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut m = Self::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Immutable view of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows()`.
    #[inline]
    pub fn row(&self, i: usize) -> &[T] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows()`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [T] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Bounds-checked element access.
    pub fn get(&self, i: usize, j: usize) -> Option<&T> {
        if i < self.rows && j < self.cols {
            Some(&self.data[i * self.cols + j])
        } else {
            None
        }
    }

    /// The underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable view of the underlying row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Matrix–vector product `y = A·x`.
    ///
    /// Numerical class: audited-close (each output element is a
    /// four-accumulator [`kernel::dot4`] reassociation of the serial dot).
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] if `x.len() != cols()`.
    pub fn matvec(&self, x: &[T]) -> Result<Vec<T>, NumericsError> {
        if x.len() != self.cols {
            return Err(NumericsError::DimensionMismatch {
                op: "matvec",
                expected: (self.cols, 1),
                found: (x.len(), 1),
            });
        }
        vpec_trace::counter_add("dense.matvec.flops_est", (2 * self.rows * self.cols) as u64);
        let mut y = vec![T::zero(); self.rows];
        for (i, yi) in y.iter_mut().enumerate() {
            *yi = kernel::dot4(self.row(i), x);
        }
        Ok(y)
    }

    /// Matrix–matrix product `A·B`.
    ///
    /// Numerical class: bit-identical (ascending-k [`kernel::axpy4`]
    /// updates, one rounded operation per term, at any thread count).
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] if inner dimensions
    /// disagree.
    pub fn matmul(&self, b: &DenseMatrix<T>) -> Result<DenseMatrix<T>, NumericsError> {
        if self.cols != b.rows {
            return Err(NumericsError::DimensionMismatch {
                op: "matmul",
                expected: (self.cols, self.cols),
                found: (b.rows, b.cols),
            });
        }
        let mut out = DenseMatrix::zeros(self.rows, b.cols);
        let (inner, ocols) = (self.cols, b.cols);
        let a = &self.data;
        let bd = &b.data;
        // Row-partitioned over the output, tiled over the inner dimension
        // so a band of B's rows stays cache-hot across the rows of each
        // block. Per output row the k terms apply in ascending order with
        // one rounded operation each — four at a time through
        // `kernel::axpy4`, then a scalar remainder — exactly
        // the sequence of the naive triple loop, so results are
        // bit-identical at any thread count (including the serial
        // fallback).
        let nt = pool::threads_for(self.rows, pool::par_min_cols());
        vpec_trace::counter_add(
            "dense.matmul.flops_est",
            (2 * self.rows * inner * ocols) as u64,
        );
        let _sp = vpec_trace::span!(
            "dense.matmul",
            "rows" => self.rows,
            "mode" => if nt > 1 { "parallel" } else { "serial" },
        );
        Pool::with_threads(nt).par_chunks_mut(
            &mut out.data,
            MATMUL_ROW_BLOCK * ocols.max(1),
            |off, chunk| {
                let i0 = off / ocols.max(1);
                for kb in (0..inner).step_by(MATMUL_K_BLOCK) {
                    let kend = (kb + MATMUL_K_BLOCK).min(inner);
                    for (di, orow) in chunk.chunks_mut(ocols.max(1)).enumerate() {
                        let arow = &a[(i0 + di) * inner..(i0 + di + 1) * inner];
                        let mut k = kb;
                        while k + 4 <= kend {
                            kernel::axpy4(
                                orow,
                                [arow[k], arow[k + 1], arow[k + 2], arow[k + 3]],
                                &bd[k * ocols..(k + 1) * ocols],
                                &bd[(k + 1) * ocols..(k + 2) * ocols],
                                &bd[(k + 2) * ocols..(k + 3) * ocols],
                                &bd[(k + 3) * ocols..(k + 4) * ocols],
                            );
                            k += 4;
                        }
                        for (k, &aik) in arow.iter().enumerate().take(kend).skip(k) {
                            let brow = &bd[k * ocols..(k + 1) * ocols];
                            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                                *o += aik * bv;
                            }
                        }
                    }
                }
            },
        );
        Ok(out)
    }

    /// Transposed copy.
    pub fn transpose(&self) -> DenseMatrix<T> {
        DenseMatrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Sum of diagonal entries.
    pub fn trace(&self) -> T {
        let n = self.rows.min(self.cols);
        let mut t = T::zero();
        for i in 0..n {
            t += self[(i, i)];
        }
        t
    }

    /// Maximum `modulus` over all entries.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|v| v.modulus()).fold(0.0, f64::max)
    }

    /// `‖A − B‖∞` over entries — convenience for tests and accuracy checks.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] if shapes differ.
    pub fn max_abs_diff(&self, other: &DenseMatrix<T>) -> Result<f64, NumericsError> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(NumericsError::DimensionMismatch {
                op: "max_abs_diff",
                expected: (self.rows, self.cols),
                found: (other.rows, other.cols),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (*a - *b).modulus())
            .fold(0.0, f64::max))
    }

    /// `true` if `|A[i][j] − A[j][i]| ≤ tol · max_abs()` for all pairs.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        let scale = self.max_abs().max(f64::MIN_POSITIVE);
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).modulus() > tol * scale {
                    return false;
                }
            }
        }
        true
    }

    /// `true` if the matrix is strictly diagonally dominant by rows:
    /// `|aᵢᵢ| > Σ_{j≠i} |aᵢⱼ|` for every row.
    pub fn is_strictly_diagonally_dominant(&self) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            let mut off = 0.0;
            for j in 0..self.cols {
                if i != j {
                    off += self[(i, j)].modulus();
                }
            }
            if self[(i, i)].modulus() <= off {
                return false;
            }
        }
        true
    }

    /// Count of entries with `modulus() > threshold`.
    pub fn count_above(&self, threshold: f64) -> usize {
        self.data.iter().filter(|v| v.modulus() > threshold).count()
    }
}

impl DenseMatrix<f64> {
    /// Extracts the principal submatrix over `idx × idx`.
    ///
    /// Used by the windowed (wVPEC) extraction, which inverts many small
    /// coupling-window submatrices of `L` instead of the full matrix.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn principal_submatrix(&self, idx: &[usize]) -> DenseMatrix<f64> {
        DenseMatrix::from_fn(idx.len(), idx.len(), |i, j| self[(idx[i], idx[j])])
    }
}

impl<T: Scalar> Index<(usize, usize)> for DenseMatrix<T> {
    type Output = T;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl<T: Scalar> IndexMut<(usize, usize)> for DenseMatrix<T> {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl<T: Scalar> fmt::Debug for DenseMatrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DenseMatrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:>12.4e} ", self[(i, j)].modulus())?;
            }
            writeln!(f, "{}", if self.cols > 8 { "..." } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Complex64;

    #[test]
    fn zeros_and_identity() {
        let z = DenseMatrix::<f64>::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(!z.is_square());
        let i = DenseMatrix::<f64>::identity(3);
        assert_eq!(i.trace(), 3.0);
        assert!(i.is_square());
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = DenseMatrix::from_rows(&[&[1.0, 2.0][..], &[3.0][..]]).unwrap_err();
        assert_eq!(err, NumericsError::RaggedRows);
    }

    #[test]
    fn matvec_matches_manual() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let y = a.matvec(&[1.0, 1.0]).unwrap();
        assert_eq!(y, vec![3.0, 7.0]);
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn matmul_matches_manual() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c[(0, 0)], 2.0);
        assert_eq!(c[(0, 1)], 1.0);
        assert_eq!(c[(1, 0)], 4.0);
        assert_eq!(c[(1, 1)], 3.0);
    }

    #[test]
    fn matmul_dimension_check() {
        let a = DenseMatrix::<f64>::zeros(2, 3);
        let b = DenseMatrix::<f64>::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn symmetry_and_dominance_checks() {
        let sym = DenseMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        assert!(sym.is_symmetric(1e-12));
        assert!(sym.is_strictly_diagonally_dominant());
        let asym = DenseMatrix::from_rows(&[&[2.0, 1.0], &[0.5, 3.0]]).unwrap();
        assert!(!asym.is_symmetric(1e-12));
        let weak = DenseMatrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]).unwrap();
        assert!(!weak.is_strictly_diagonally_dominant());
    }

    #[test]
    fn principal_submatrix_extracts_window() {
        let a = DenseMatrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let s = a.principal_submatrix(&[1, 3]);
        assert_eq!(s[(0, 0)], 5.0);
        assert_eq!(s[(0, 1)], 7.0);
        assert_eq!(s[(1, 0)], 13.0);
        assert_eq!(s[(1, 1)], 15.0);
    }

    #[test]
    fn complex_matvec() {
        let a = DenseMatrix::from_rows(&[
            &[Complex64::ONE, Complex64::I],
            &[Complex64::ZERO, Complex64::new(2.0, 0.0)],
        ])
        .unwrap();
        let y = a.matvec(&[Complex64::ONE, Complex64::ONE]).unwrap();
        assert_eq!(y[0], Complex64::new(1.0, 1.0));
        assert_eq!(y[1], Complex64::new(2.0, 0.0));
    }

    #[test]
    fn get_bounds() {
        let a = DenseMatrix::<f64>::identity(2);
        assert_eq!(a.get(1, 1), Some(&1.0));
        assert_eq!(a.get(2, 0), None);
    }

    #[test]
    fn max_abs_diff_and_count() {
        let a = DenseMatrix::<f64>::identity(2);
        let b = DenseMatrix::<f64>::zeros(2, 2);
        assert_eq!(a.max_abs_diff(&b).unwrap(), 1.0);
        assert_eq!(a.count_above(0.5), 2);
        assert!(a.max_abs_diff(&DenseMatrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn debug_not_empty() {
        let a = DenseMatrix::<f64>::identity(2);
        assert!(!format!("{a:?}").is_empty());
    }
}
