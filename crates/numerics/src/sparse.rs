//! Triplet (COO) and compressed-sparse-row matrices.
//!
//! MNA assembly stamps elements as `(row, col, value)` triplets into a
//! [`CooMatrix`]; duplicate entries are summed on conversion to
//! [`CsrMatrix`], which is the format consumed by the sparse LU solver and
//! the sparsity accounting (the paper's "sparse factor" metric is an nnz
//! ratio over the VPEC circuit matrix).

use crate::{DenseMatrix, NumericsError, Scalar};

/// A coordinate-format (triplet) sparse matrix builder.
///
/// Duplicate `(row, col)` entries are allowed and are summed when the matrix
/// is compressed — exactly the semantics of SPICE-style MNA stamping.
#[derive(Debug, Clone)]
pub struct CooMatrix<T = f64> {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, T)>,
}

impl<T: Scalar> CooMatrix<T> {
    /// Creates an empty `rows × cols` triplet matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        CooMatrix {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of raw (pre-compression) triplets.
    pub fn nnz_raw(&self) -> usize {
        self.entries.len()
    }

    /// Raw `(row, col, value)` triplets in insertion order (duplicates not
    /// yet summed). Used by the audit layer to scan stamps and to compute
    /// residuals without compressing first.
    pub fn entries(&self) -> &[(usize, usize, T)] {
        &self.entries
    }

    /// Adds `value` at `(row, col)`; duplicates accumulate.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::IndexOutOfBounds`] if the index is outside
    /// the matrix shape.
    pub fn push(&mut self, row: usize, col: usize, value: T) -> Result<(), NumericsError> {
        if row >= self.rows || col >= self.cols {
            return Err(NumericsError::IndexOutOfBounds {
                index: (row, col),
                shape: (self.rows, self.cols),
            });
        }
        if !value.is_zero() {
            self.entries.push((row, col, value));
        }
        Ok(())
    }

    /// Compresses to CSR, summing duplicates and dropping exact zeros.
    pub fn to_csr(&self) -> CsrMatrix<T> {
        let mut sorted = self.entries.clone();
        sorted.sort_by_key(|&(r, c, _)| (r, c));
        let mut row_ptr = vec![0usize; self.rows + 1];
        let mut col_idx: Vec<usize> = Vec::with_capacity(sorted.len());
        let mut values: Vec<T> = Vec::with_capacity(sorted.len());
        let mut iter = sorted.into_iter().peekable();
        while let Some((r, c, mut v)) = iter.next() {
            while let Some(&(r2, c2, v2)) = iter.peek() {
                if r2 == r && c2 == c {
                    v += v2;
                    iter.next();
                } else {
                    break;
                }
            }
            if !v.is_zero() {
                col_idx.push(c);
                values.push(v);
                row_ptr[r + 1] += 1;
            }
        }
        for i in 0..self.rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr,
            col_idx,
            values,
        }
    }
}

/// A compressed-sparse-row matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix<T = f64> {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<T>,
}

impl<T: Scalar> CsrMatrix<T> {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (structural) nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of stored entries relative to a dense matrix of the same
    /// shape; the paper's *sparse factor*.
    pub fn density(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            0.0
        } else {
            self.nnz() as f64 / (self.rows as f64 * self.cols as f64)
        }
    }

    /// The `(col_indices, values)` slice pair for row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows()`.
    pub fn row(&self, i: usize) -> (&[usize], &[T]) {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Value at `(i, j)`, or zero if the entry is not stored.
    pub fn get(&self, i: usize, j: usize) -> T {
        if i >= self.rows {
            return T::zero();
        }
        let (cols, vals) = self.row(i);
        match cols.binary_search(&j) {
            Ok(k) => vals[k],
            Err(_) => T::zero(),
        }
    }

    /// Matrix–vector product `y = A·x`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] if `x.len() != cols()`.
    pub fn matvec(&self, x: &[T]) -> Result<Vec<T>, NumericsError> {
        if x.len() != self.cols {
            return Err(NumericsError::DimensionMismatch {
                op: "csr matvec",
                expected: (self.cols, 1),
                found: (x.len(), 1),
            });
        }
        let mut y = vec![T::zero(); self.rows];
        for (i, yi) in y.iter_mut().enumerate() {
            let (cols, vals) = self.row(i);
            let mut acc = T::zero();
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                acc += v * x[c];
            }
            *yi = acc;
        }
        Ok(y)
    }

    /// Expands to a dense matrix (for small problems and tests).
    pub fn to_dense(&self) -> DenseMatrix<T> {
        let mut d = DenseMatrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            let (cols, vals) = self.row(i);
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                d[(i, c)] = v;
            }
        }
        d
    }

    /// Transposed copy (also serves as CSR→CSC conversion).
    pub fn transpose(&self) -> CsrMatrix<T> {
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.col_idx {
            counts[c + 1] += 1;
        }
        for j in 0..self.cols {
            counts[j + 1] += counts[j];
        }
        let mut row_ptr = counts.clone();
        let mut col_idx = vec![0usize; self.nnz()];
        let mut values = vec![T::zero(); self.nnz()];
        for i in 0..self.rows {
            let (cols, vals) = self.row(i);
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                let dst = row_ptr[c];
                col_idx[dst] = i;
                values[dst] = v;
                row_ptr[c] += 1;
            }
        }
        // `counts` still holds the unadvanced pointer array (the clone was
        // used as insertion cursors), so it is the transpose's row_ptr.
        CsrMatrix {
            rows: self.cols,
            cols: self.rows,
            row_ptr: counts,
            col_idx,
            values,
        }
    }

    /// Builds a CSR matrix from a dense one, keeping entries with
    /// `modulus() > drop_tol`.
    pub fn from_dense(d: &DenseMatrix<T>, drop_tol: f64) -> CsrMatrix<T> {
        let mut coo = CooMatrix::new(d.rows(), d.cols());
        for i in 0..d.rows() {
            for j in 0..d.cols() {
                let v = d[(i, j)];
                if v.modulus() > drop_tol {
                    // In-bounds by construction.
                    let _ = coo.push(i, j, v);
                }
            }
        }
        coo.to_csr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix<f64> {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 2.0).unwrap();
        coo.push(0, 2, 1.0).unwrap();
        coo.push(1, 1, 3.0).unwrap();
        coo.push(2, 0, 4.0).unwrap();
        coo.push(2, 2, 5.0).unwrap();
        coo.to_csr()
    }

    #[test]
    fn duplicates_accumulate() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(0, 0, 2.5).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 1);
        assert_eq!(csr.get(0, 0), 3.5);
    }

    #[test]
    fn cancelling_duplicates_are_dropped() {
        let mut coo = CooMatrix::new(1, 1);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(0, 0, -1.0).unwrap();
        assert_eq!(coo.to_csr().nnz(), 0);
    }

    #[test]
    fn out_of_bounds_push_rejected() {
        let mut coo = CooMatrix::<f64>::new(2, 2);
        assert!(coo.push(2, 0, 1.0).is_err());
        assert!(coo.push(0, 5, 1.0).is_err());
    }

    #[test]
    fn zero_push_is_ignored() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 0.0).unwrap();
        assert_eq!(coo.nnz_raw(), 0);
    }

    #[test]
    fn get_and_density() {
        let m = sample();
        assert_eq!(m.get(0, 2), 1.0);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.get(9, 9), 0.0);
        assert_eq!(m.nnz(), 5);
        assert!((m.density() - 5.0 / 9.0).abs() < 1e-15);
    }

    #[test]
    fn matvec_matches_dense() {
        let m = sample();
        let x = [1.0, 2.0, 3.0];
        let y = m.matvec(&x).unwrap();
        let yd = m.to_dense().matvec(&x).unwrap();
        assert_eq!(y, yd);
        assert!(m.matvec(&[1.0]).is_err());
    }

    #[test]
    fn transpose_round_trip() {
        let m = sample();
        let tt = m.transpose().transpose();
        assert_eq!(m, tt);
        assert_eq!(m.transpose().get(2, 0), 1.0);
        assert_eq!(m.transpose().get(0, 2), 4.0);
    }

    #[test]
    fn from_dense_with_drop_tolerance() {
        let d = DenseMatrix::from_rows(&[&[1.0, 1e-12], &[0.0, 2.0]]).unwrap();
        let s = CsrMatrix::from_dense(&d, 1e-9);
        assert_eq!(s.nnz(), 2);
        assert_eq!(s.get(0, 0), 1.0);
        assert_eq!(s.get(1, 1), 2.0);
    }

    #[test]
    fn empty_matrix_density() {
        let coo = CooMatrix::<f64>::new(0, 0);
        assert_eq!(coo.to_csr().density(), 0.0);
    }
}
