//! Small vector helpers shared by the solvers and the circuit engine.

use crate::Scalar;

/// Dot product `Σ xᵢ·yᵢ` over the common prefix of the two slices.
///
/// # Panics
///
/// Panics (via `debug_assert`) in debug builds if lengths differ.
pub fn dot<T: Scalar>(x: &[T], y: &[T]) -> T {
    debug_assert_eq!(x.len(), y.len());
    let mut acc = T::zero();
    for (a, b) in x.iter().zip(y.iter()) {
        acc += *a * *b;
    }
    acc
}

/// In-place `y ← y + alpha·x`.
///
/// # Panics
///
/// Panics (via `debug_assert`) in debug builds if lengths differ.
pub fn axpy<T: Scalar>(alpha: T, x: &[T], y: &mut [T]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * *xi;
    }
}

/// In-place `x ← alpha·x`.
pub fn scale<T: Scalar>(alpha: T, x: &mut [T]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Element-wise difference `x − y` as a new vector.
///
/// # Panics
///
/// Panics (via `debug_assert`) in debug builds if lengths differ.
pub fn sub<T: Scalar>(x: &[T], y: &[T]) -> Vec<T> {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y.iter()).map(|(a, b)| *a - *b).collect()
}

/// Euclidean norm `‖x‖₂`.
pub fn norm2<T: Scalar>(x: &[T]) -> f64 {
    x.iter().map(|v| v.modulus().powi(2)).sum::<f64>().sqrt()
}

/// Max norm `‖x‖∞`.
pub fn norm_inf<T: Scalar>(x: &[T]) -> f64 {
    x.iter().map(|v| v.modulus()).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Complex64;

    #[test]
    fn dot_and_axpy() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [4.0, 5.0, 6.0];
        assert_eq!(dot(&x, &y), 32.0);
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [6.0, 9.0, 12.0]);
    }

    #[test]
    fn scale_and_sub() {
        let mut x = [1.0, -2.0];
        scale(3.0, &mut x);
        assert_eq!(x, [3.0, -6.0]);
        assert_eq!(sub(&x, &[1.0, 1.0]), vec![2.0, -7.0]);
    }

    #[test]
    fn norms() {
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(norm_inf(&[-7.0, 2.0]), 7.0);
        assert_eq!(norm_inf::<f64>(&[]), 0.0);
    }

    #[test]
    fn complex_norms() {
        let v = [Complex64::new(3.0, 4.0)];
        assert_eq!(norm2(&v), 5.0);
        assert_eq!(norm_inf(&v), 5.0);
    }
}
