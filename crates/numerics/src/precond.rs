//! Preconditioners for the Krylov solvers.
//!
//! Three classical options plus the paper-specific one:
//!
//! * [`IdentityPreconditioner`] — no-op baseline;
//! * [`JacobiPreconditioner`] — inverse diagonal, one division per row;
//! * [`Ilu0Preconditioner`] — incomplete LU on the exact sparsity
//!   pattern, the workhorse for diagonally-dominant systems;
//! * [`IlutPreconditioner`] — dual-threshold incomplete LU with fill-in
//!   and pivot boosting, the workhorse for the MNA saddle-point systems
//!   whose structurally-zero diagonals break ILU(0);
//! * [`WvpecPreconditioner`] — the windowed approximate inverse from the
//!   wVPEC model (Yu & He): each row keeps its `b` strongest couplings,
//!   inverts the `b×b` window densely (`O(N·b³)` total), and the row of
//!   that small inverse becomes a row of a sparse approximate `A⁻¹`.
//!   The windowed model is provably passive and cheap, which is exactly
//!   the structure an iterative method wants as a preconditioner for the
//!   full system.

use crate::{CsrMatrix, DenseMatrix, LuFactor, NumericsError};
use std::fmt::Debug;

/// Application of an approximate inverse: `z = M⁻¹·r`.
///
/// `Debug + Send + Sync` bounds let a boxed preconditioner live inside
/// the circuit layer's factorization handle, which is shared across the
/// engine's worker threads.
pub trait Preconditioner: Debug + Send + Sync {
    /// The preconditioner dimension `n`.
    fn dim(&self) -> usize;

    /// Computes `z = M⁻¹·r`, overwriting `z`.
    fn apply(&self, r: &[f64], z: &mut [f64]);

    /// Short label for diagnostics and trace attribution.
    fn label(&self) -> &'static str;
}

/// The identity preconditioner (`z = r`): unpreconditioned baseline.
#[derive(Debug, Clone, Default)]
pub struct IdentityPreconditioner {
    dim: usize,
}

impl IdentityPreconditioner {
    /// Creates an identity preconditioner of dimension `n`.
    pub fn new(n: usize) -> Self {
        IdentityPreconditioner { dim: n }
    }
}

impl Preconditioner for IdentityPreconditioner {
    fn dim(&self) -> usize {
        self.dim
    }

    fn apply(&self, r: &[f64], z: &mut [f64]) {
        z.copy_from_slice(r);
    }

    fn label(&self) -> &'static str {
        "identity"
    }
}

/// The Jacobi (inverse-diagonal) preconditioner.
#[derive(Debug, Clone)]
pub struct JacobiPreconditioner {
    inv_diag: Vec<f64>,
}

impl JacobiPreconditioner {
    /// Builds `M⁻¹ = diag(A)⁻¹` from a CSR matrix.
    ///
    /// # Errors
    ///
    /// [`NumericsError::Singular`] if any diagonal entry is zero or
    /// missing; [`NumericsError::NotSquare`] for rectangular input.
    pub fn from_csr(a: &CsrMatrix<f64>) -> Result<Self, NumericsError> {
        if a.rows() != a.cols() {
            return Err(NumericsError::NotSquare {
                found: (a.rows(), a.cols()),
            });
        }
        let mut inv_diag = Vec::with_capacity(a.rows());
        for i in 0..a.rows() {
            let d = a.get(i, i);
            if d == 0.0 || !d.is_finite() {
                return Err(NumericsError::Singular { step: i });
            }
            inv_diag.push(1.0 / d);
        }
        Ok(JacobiPreconditioner { inv_diag })
    }
}

impl Preconditioner for JacobiPreconditioner {
    fn dim(&self) -> usize {
        self.inv_diag.len()
    }

    fn apply(&self, r: &[f64], z: &mut [f64]) {
        for ((zi, &ri), &di) in z.iter_mut().zip(r.iter()).zip(self.inv_diag.iter()) {
            *zi = ri * di;
        }
    }

    fn label(&self) -> &'static str {
        "jacobi"
    }
}

/// ILU(0): incomplete LU factorization restricted to the sparsity
/// pattern of `A` (no fill-in). Applying it is one forward and one
/// backward triangular sweep over the stored nonzeros.
#[derive(Debug, Clone)]
pub struct Ilu0Preconditioner {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
    /// Index of the diagonal entry within each row's slice.
    diag: Vec<usize>,
}

impl Ilu0Preconditioner {
    /// Computes ILU(0) of a square CSR matrix.
    ///
    /// # Errors
    ///
    /// [`NumericsError::Singular`] when a pivot (diagonal entry after the
    /// incomplete elimination) is zero or the diagonal is structurally
    /// missing; [`NumericsError::NotSquare`] for rectangular input;
    /// [`NumericsError::NonFinite`] if the factorization produces a
    /// non-finite value.
    pub fn from_csr(a: &CsrMatrix<f64>) -> Result<Self, NumericsError> {
        if a.rows() != a.cols() {
            return Err(NumericsError::NotSquare {
                found: (a.rows(), a.cols()),
            });
        }
        let n = a.rows();
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::with_capacity(a.nnz());
        let mut values = Vec::with_capacity(a.nnz());
        row_ptr.push(0);
        for i in 0..n {
            let (cols, vals) = a.row(i);
            col_idx.extend_from_slice(cols);
            values.extend_from_slice(vals);
            row_ptr.push(col_idx.len());
        }
        let mut diag = vec![usize::MAX; n];
        for i in 0..n {
            let row = &col_idx[row_ptr[i]..row_ptr[i + 1]];
            match row.iter().position(|&c| c == i) {
                Some(off) => diag[i] = row_ptr[i] + off,
                None => return Err(NumericsError::Singular { step: i }),
            }
        }

        // IKJ elimination on the fixed pattern, with a scatter map giving
        // O(1) lookup of row i's entries by column.
        let mut pos = vec![usize::MAX; n];
        for i in 0..n {
            for k in row_ptr[i]..row_ptr[i + 1] {
                pos[col_idx[k]] = k;
            }
            for k in row_ptr[i]..row_ptr[i + 1] {
                let kc = col_idx[k];
                if kc >= i {
                    break;
                }
                let pivot = values[diag[kc]];
                if pivot == 0.0 {
                    return Err(NumericsError::Singular { step: kc });
                }
                let mult = values[k] / pivot;
                values[k] = mult;
                for kk in (diag[kc] + 1)..row_ptr[kc + 1] {
                    let jc = col_idx[kk];
                    let p = pos[jc];
                    if p != usize::MAX {
                        values[p] -= mult * values[kk];
                    }
                }
            }
            if !values[diag[i]].is_finite() {
                return Err(NumericsError::NonFinite {
                    op: "ilu0",
                    index: (i, i),
                });
            }
            if values[diag[i]] == 0.0 {
                return Err(NumericsError::Singular { step: i });
            }
            for k in row_ptr[i]..row_ptr[i + 1] {
                pos[col_idx[k]] = usize::MAX;
            }
        }
        Ok(Ilu0Preconditioner {
            n,
            row_ptr,
            col_idx,
            values,
            diag,
        })
    }
}

impl Preconditioner for Ilu0Preconditioner {
    fn dim(&self) -> usize {
        self.n
    }

    fn apply(&self, r: &[f64], z: &mut [f64]) {
        // Forward sweep: L·y = r with unit lower triangle.
        for i in 0..self.n {
            let mut acc = r[i];
            for k in self.row_ptr[i]..self.diag[i] {
                acc -= self.values[k] * z[self.col_idx[k]];
            }
            z[i] = acc;
        }
        // Backward sweep: U·z = y.
        for i in (0..self.n).rev() {
            let mut acc = z[i];
            for k in (self.diag[i] + 1)..self.row_ptr[i + 1] {
                acc -= self.values[k] * z[self.col_idx[k]];
            }
            z[i] = acc / self.values[self.diag[i]];
        }
    }

    fn label(&self) -> &'static str {
        "ilu0"
    }
}

/// ILUT(`p`, `τ`): incomplete LU with dual-threshold dropping — fill-in
/// is allowed (unlike [`Ilu0Preconditioner`]), entries below a relative
/// drop tolerance `τ` are discarded, and each row keeps at most `p`
/// off-diagonal entries per triangle. The fill-in is what makes it work
/// on MNA saddle-point systems: source-branch rows carry a structurally
/// zero diagonal that pattern-restricted ILU(0) can never pivot on, but
/// here elimination fill gives those rows a usable pivot. A pivot that
/// is still (near-)zero after elimination is boosted to the row norm
/// rather than failing the construction — a preconditioner only needs
/// to be nonsingular, not exact.
#[derive(Debug, Clone)]
pub struct IlutPreconditioner {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
    /// Index of the diagonal entry within each row's slice.
    diag: Vec<usize>,
}

impl IlutPreconditioner {
    /// Computes ILUT of a square CSR matrix keeping at most `fill`
    /// off-diagonal entries per triangle per row and dropping entries
    /// smaller than `tau` times the row's max magnitude.
    ///
    /// # Errors
    ///
    /// [`NumericsError::NotSquare`] for rectangular input;
    /// [`NumericsError::NonFinite`] if elimination produces a non-finite
    /// value (absurdly scaled input).
    pub fn from_csr(a: &CsrMatrix<f64>, fill: usize, tau: f64) -> Result<Self, NumericsError> {
        if a.rows() != a.cols() {
            return Err(NumericsError::NotSquare {
                found: (a.rows(), a.cols()),
            });
        }
        let n = a.rows();
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx: Vec<usize> = Vec::new();
        let mut values: Vec<f64> = Vec::new();
        let mut diag = vec![0usize; n];
        row_ptr.push(0);

        // Dense scatter workspace for the current row, plus the list of
        // its live columns. `pending` orders the lower-triangle columns
        // still awaiting elimination.
        let mut w = vec![0.0f64; n];
        let mut live: Vec<usize> = Vec::new();
        let mut marked = vec![false; n];
        let mut pending: std::collections::BinaryHeap<std::cmp::Reverse<usize>> =
            std::collections::BinaryHeap::new();

        for i in 0..n {
            let (cols, vals) = a.row(i);
            let mut rownorm = 0.0f64;
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                if !v.is_finite() {
                    return Err(NumericsError::NonFinite {
                        op: "ilut",
                        index: (i, c),
                    });
                }
                w[c] = v;
                if !marked[c] {
                    marked[c] = true;
                    live.push(c);
                    if c < i {
                        pending.push(std::cmp::Reverse(c));
                    }
                }
                rownorm = rownorm.max(v.abs());
            }
            // An empty row degrades to identity; the solver's probe, not
            // the preconditioner, decides whether the system is usable.
            let drop_tol = tau * rownorm;

            // IKJ elimination in ascending column order; fill-in below
            // the drop tolerance is discarded immediately.
            while let Some(std::cmp::Reverse(k)) = pending.pop() {
                let wk = w[k];
                if wk == 0.0 || wk.abs() <= drop_tol {
                    w[k] = 0.0;
                    continue;
                }
                let dk = diag[k];
                let mult = wk / values[dk];
                if !mult.is_finite() {
                    return Err(NumericsError::NonFinite {
                        op: "ilut",
                        index: (i, k),
                    });
                }
                w[k] = mult;
                for kk in (dk + 1)..row_ptr[k + 1] {
                    let j = col_idx[kk];
                    let upd = mult * values[kk];
                    if marked[j] {
                        w[j] -= upd;
                    } else if upd.abs() > drop_tol {
                        marked[j] = true;
                        live.push(j);
                        w[j] = -upd;
                        if j < i {
                            pending.push(std::cmp::Reverse(j));
                        }
                    }
                }
            }

            // Dual-threshold dropping: keep the diagonal, then at most
            // `fill` largest-magnitude survivors per triangle.
            let mut lower: Vec<(f64, usize)> = Vec::new();
            let mut upper: Vec<(f64, usize)> = Vec::new();
            for &c in &live {
                let v = w[c];
                if c != i && v != 0.0 && v.abs() > drop_tol {
                    if c < i {
                        lower.push((v.abs(), c));
                    } else {
                        upper.push((v.abs(), c));
                    }
                }
            }
            lower.sort_by(|x, y| y.0.total_cmp(&x.0).then(x.1.cmp(&y.1)));
            upper.sort_by(|x, y| y.0.total_cmp(&x.0).then(x.1.cmp(&y.1)));
            lower.truncate(fill);
            upper.truncate(fill);
            lower.sort_by_key(|&(_, c)| c);
            upper.sort_by_key(|&(_, c)| c);

            let mut pivot = w[i];
            if !pivot.is_finite() {
                return Err(NumericsError::NonFinite {
                    op: "ilut",
                    index: (i, i),
                });
            }
            // Pivot boosting: a pivot at rounding level (or exactly
            // zero, for a source row whose fill was all dropped) is
            // replaced by the row norm, keeping the factor nonsingular
            // at the cost of local accuracy.
            let floor = rownorm.max(1e-300) * 1e-12;
            if pivot.abs() <= floor {
                let boost = rownorm.max(1e-300);
                pivot = if pivot < 0.0 { -boost } else { boost };
            }

            for &(_, c) in &lower {
                col_idx.push(c);
                values.push(w[c]);
            }
            diag[i] = col_idx.len();
            col_idx.push(i);
            values.push(pivot);
            for &(_, c) in &upper {
                col_idx.push(c);
                values.push(w[c]);
            }
            row_ptr.push(col_idx.len());

            for &c in &live {
                w[c] = 0.0;
                marked[c] = false;
            }
            live.clear();
            pending.clear();
        }
        Ok(IlutPreconditioner {
            n,
            row_ptr,
            col_idx,
            values,
            diag,
        })
    }

    /// Stored nonzeros of the incomplete factors.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }
}

impl Preconditioner for IlutPreconditioner {
    fn dim(&self) -> usize {
        self.n
    }

    fn apply(&self, r: &[f64], z: &mut [f64]) {
        // Forward sweep: L·y = r with unit lower triangle.
        for i in 0..self.n {
            let mut acc = r[i];
            for k in self.row_ptr[i]..self.diag[i] {
                acc -= self.values[k] * z[self.col_idx[k]];
            }
            z[i] = acc;
        }
        // Backward sweep: U·z = y.
        for i in (0..self.n).rev() {
            let mut acc = z[i];
            for k in (self.diag[i] + 1)..self.row_ptr[i + 1] {
                acc -= self.values[k] * z[self.col_idx[k]];
            }
            z[i] = acc / self.values[self.diag[i]];
        }
    }

    fn label(&self) -> &'static str {
        "ilut"
    }
}

/// The wVPEC windowed approximate inverse: row `i` of `M ≈ A⁻¹` is the
/// matching row of `inv(A[w,w])` where `w` is `i` plus the `b−1`
/// strongest couplings of row `i`. Build cost is `O(N·b³)`; application
/// is one sparse matvec with at most `b` nonzeros per row.
#[derive(Debug, Clone)]
pub struct WvpecPreconditioner {
    n: usize,
    window: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl WvpecPreconditioner {
    /// Builds the windowed approximate inverse with window size `b`
    /// (clamped to the matrix dimension; `b = 0` is rejected). A
    /// singular `b×b` window degrades its row to identity rather than
    /// failing the construction, so the result is always nonsingular.
    ///
    /// # Errors
    ///
    /// [`NumericsError::NotSquare`] for rectangular input;
    /// [`NumericsError::DimensionMismatch`] for `b = 0`.
    pub fn from_csr(a: &CsrMatrix<f64>, b: usize) -> Result<Self, NumericsError> {
        if a.rows() != a.cols() {
            return Err(NumericsError::NotSquare {
                found: (a.rows(), a.cols()),
            });
        }
        if b == 0 {
            return Err(NumericsError::DimensionMismatch {
                op: "wvpec window",
                expected: (1, 1),
                found: (0, 0),
            });
        }
        let n = a.rows();
        let b = b.min(n.max(1));
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx: Vec<usize> = Vec::with_capacity(n * b);
        let mut values: Vec<f64> = Vec::with_capacity(n * b);
        row_ptr.push(0);
        let mut strongest: Vec<(f64, usize)> = Vec::new();
        let mut window: Vec<usize> = Vec::new();
        for i in 0..n {
            // Window selection: the diagonal plus the b−1 strongest
            // off-diagonal couplings of row i, by magnitude (the paper's
            // geometric windows reduce to this on a bus, and magnitude
            // ordering generalizes to arbitrary MNA structure).
            let (cols, vals) = a.row(i);
            strongest.clear();
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                if c != i {
                    strongest.push((v.abs(), c));
                }
            }
            strongest.sort_by(|x, y| y.0.total_cmp(&x.0).then(x.1.cmp(&y.1)));
            window.clear();
            window.push(i);
            window.extend(strongest.iter().take(b - 1).map(|&(_, c)| c));
            window.sort_unstable();
            let w = window.len();
            let li = window.binary_search(&i).expect("i is in its own window");

            let sub = DenseMatrix::from_fn(w, w, |r, c| a.get(window[r], window[c]));
            match LuFactor::new(&sub).and_then(|lu| lu.inverse()) {
                Ok(inv) => {
                    for (lc, &gc) in window.iter().enumerate() {
                        let v = inv.row(li)[lc];
                        if v != 0.0 {
                            col_idx.push(gc);
                            values.push(v);
                        }
                    }
                }
                // A singular window (MNA source-branch rows pair a zero
                // diagonal with couplings that may not make the local
                // block invertible) degrades that one row to identity
                // instead of rejecting the whole approximate inverse —
                // a preconditioner only needs to be nonsingular, not a
                // faithful local inverse everywhere.
                Err(_) => {
                    col_idx.push(i);
                    values.push(1.0);
                }
            }
            row_ptr.push(col_idx.len());
        }
        Ok(WvpecPreconditioner {
            n,
            window: b,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// The window size the approximate inverse was built with.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Stored nonzeros of the approximate inverse (≤ `n·b`).
    pub fn nnz(&self) -> usize {
        self.values.len()
    }
}

impl Preconditioner for WvpecPreconditioner {
    fn dim(&self) -> usize {
        self.n
    }

    fn apply(&self, r: &[f64], z: &mut [f64]) {
        for (i, zi) in z.iter_mut().enumerate() {
            let mut acc = 0.0;
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                acc += self.values[k] * r[self.col_idx[k]];
            }
            *zi = acc;
        }
    }

    fn label(&self) -> &'static str {
        "wvpec-window"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    /// Small diagonally-dominant test matrix.
    fn sample() -> CsrMatrix<f64> {
        let mut coo = CooMatrix::new(4, 4);
        for i in 0..4 {
            coo.push(i, i, 4.0 + i as f64).unwrap();
        }
        coo.push(0, 1, -1.0).unwrap();
        coo.push(1, 0, -1.0).unwrap();
        coo.push(1, 2, -0.5).unwrap();
        coo.push(2, 1, -0.5).unwrap();
        coo.push(2, 3, -0.25).unwrap();
        coo.push(3, 2, -0.25).unwrap();
        coo.to_csr()
    }

    #[test]
    fn jacobi_inverts_the_diagonal() {
        let m = JacobiPreconditioner::from_csr(&sample()).unwrap();
        let r = [4.0, 5.0, 6.0, 7.0];
        let mut z = [0.0; 4];
        m.apply(&r, &mut z);
        assert_eq!(z, [1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn jacobi_rejects_zero_diagonal() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(0, 1, 1.0).unwrap();
        coo.push(1, 0, 1.0).unwrap();
        let err = JacobiPreconditioner::from_csr(&coo.to_csr()).unwrap_err();
        assert_eq!(err, NumericsError::Singular { step: 1 });
    }

    #[test]
    fn ilu0_is_exact_when_lu_has_no_fill() {
        // Tridiagonal-ish pattern: ILU(0) equals full LU, so M⁻¹·A·x = x.
        let a = sample();
        let m = Ilu0Preconditioner::from_csr(&a).unwrap();
        let x = [1.0, -2.0, 3.0, 0.5];
        let ax = a.matvec(&x).unwrap();
        let mut z = [0.0; 4];
        m.apply(&ax, &mut z);
        for (zi, xi) in z.iter().zip(x.iter()) {
            assert!((zi - xi).abs() < 1e-12, "{z:?} vs {x:?}");
        }
    }

    #[test]
    fn ilu0_rejects_missing_diagonal() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(1, 0, 1.0).unwrap();
        let err = Ilu0Preconditioner::from_csr(&coo.to_csr()).unwrap_err();
        assert_eq!(err, NumericsError::Singular { step: 1 });
    }

    #[test]
    fn wvpec_window_covers_the_full_matrix_when_b_is_n() {
        // On a fully-stored matrix, b = n makes every window the whole
        // matrix: M = A⁻¹ exactly. (Windows only draw from stored
        // couplings, so the matrix must be dense for this identity.)
        let dense = DenseMatrix::from_fn(4, 4, |i, j| {
            if i == j {
                5.0 + i as f64
            } else {
                1.0 / (1.0 + (i as f64 - j as f64).abs())
            }
        });
        let a = CsrMatrix::from_dense(&dense, 0.0);
        let m = WvpecPreconditioner::from_csr(&a, 4).unwrap();
        let x = [0.5, 1.5, -1.0, 2.0];
        let ax = a.matvec(&x).unwrap();
        let mut z = [0.0; 4];
        m.apply(&ax, &mut z);
        for (zi, xi) in z.iter().zip(x.iter()) {
            assert!((zi - xi).abs() < 1e-10, "{z:?} vs {x:?}");
        }
    }

    #[test]
    fn wvpec_rejects_zero_window() {
        let err = WvpecPreconditioner::from_csr(&sample(), 0).unwrap_err();
        assert!(matches!(err, NumericsError::DimensionMismatch { .. }));
    }

    #[test]
    fn labels_are_distinct() {
        let a = sample();
        let labels = [
            IdentityPreconditioner::new(4).label(),
            JacobiPreconditioner::from_csr(&a).unwrap().label(),
            Ilu0Preconditioner::from_csr(&a).unwrap().label(),
            WvpecPreconditioner::from_csr(&a, 2).unwrap().label(),
        ];
        for (i, a) in labels.iter().enumerate() {
            for b in &labels[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
