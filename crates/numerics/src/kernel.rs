//! Register-blocked inner kernels shared by the dense factorizations.
//!
//! Four-wide unrolled loops over contiguous row slices: four independent
//! accumulators (dot products) or four fused row updates per sweep. The
//! shapes are chosen so LLVM autovectorizes them to packed f64 vector
//! code without `unsafe` or explicit SIMD types, and they split into two
//! numerical classes:
//!
//! * [`dot4`] reassociates the sum into four partial accumulators —
//!   callers are *audited-close* paths (triangular solves, matvec, the
//!   blocked Cholesky) where the audit tolerance machinery covers the
//!   reordering;
//! * [`axpy4`] / [`sub4`] keep the per-element operation sequence of the
//!   unblocked loops (ascending k, one rounded multiply-add per term),
//!   so the blocked LU trailing update and the unrolled matmul stay
//!   bit-identical to their serial references.

use crate::Scalar;

/// Four-accumulator dot product of the common prefix of `a` and `b`.
///
/// The partial sums combine as `((s0 + s1) + (s2 + s3)) + tail`, a fixed
/// reassociation of the serial left-to-right sum: deterministic for a
/// given input, but *not* bit-identical to a single-accumulator loop.
///
/// Numerical class: audited-close.
#[inline]
pub(crate) fn dot4<T: Scalar>(a: &[T], b: &[T]) -> T {
    let m = a.len().min(b.len());
    let (a, b) = (&a[..m], &b[..m]);
    let mut s0 = T::zero();
    let mut s1 = T::zero();
    let mut s2 = T::zero();
    let mut s3 = T::zero();
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    for (x, y) in (&mut ca).zip(&mut cb) {
        s0 += x[0] * y[0];
        s1 += x[1] * y[1];
        s2 += x[2] * y[2];
        s3 += x[3] * y[3];
    }
    let mut tail = T::zero();
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        tail += *x * *y;
    }
    ((s0 + s1) + (s2 + s3)) + tail
}

/// `c[j] += f[0]·b0[j]; c[j] += f[1]·b1[j]; …` — four ascending-k terms
/// per element, each its own rounded operation, exactly the sequence the
/// unblocked k-at-a-time loop performs. One load/store of `c` covers four
/// inner-dimension steps.
///
/// Numerical class: bit-identical.
#[inline]
pub(crate) fn axpy4<T: Scalar>(c: &mut [T], f: [T; 4], b0: &[T], b1: &[T], b2: &[T], b3: &[T]) {
    for ((((cj, &x0), &x1), &x2), &x3) in c.iter_mut().zip(b0).zip(b1).zip(b2).zip(b3) {
        let mut v = *cj;
        v += f[0] * x0;
        v += f[1] * x1;
        v += f[2] * x2;
        v += f[3] * x3;
        *cj = v;
    }
}

/// The subtracting twin of [`axpy4`]: `c[j] -= f[s]·bs[j]` for four
/// ascending elimination steps, one rounded operation per term.
///
/// Numerical class: bit-identical.
#[inline]
pub(crate) fn sub4<T: Scalar>(c: &mut [T], f: [T; 4], b0: &[T], b1: &[T], b2: &[T], b3: &[T]) {
    for ((((cj, &x0), &x1), &x2), &x3) in c.iter_mut().zip(b0).zip(b1).zip(b2).zip(b3) {
        let mut v = *cj;
        v -= f[0] * x0;
        v -= f[1] * x1;
        v -= f[2] * x2;
        v -= f[3] * x3;
        *cj = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot4_matches_naive_on_exact_values() {
        // Small integers: every grouping is exact, so equality is exact.
        let a: Vec<f64> = (0..11).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..11).map(|i| (i * 2) as f64).collect();
        let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert_eq!(dot4(&a, &b), naive);
        assert_eq!(dot4(&a[..3], &b[..3]), 10.0);
        assert_eq!(dot4(&a[..0], &b[..0]), 0.0);
    }

    #[test]
    fn dot4_is_close_to_naive_on_irrational_values() {
        let a: Vec<f64> = (0..57).map(|i| (i as f64 * 0.37).sin()).collect();
        let b: Vec<f64> = (0..57).map(|i| (i as f64 * 0.71).cos()).collect();
        let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot4(&a, &b) - naive).abs() < 1e-12);
    }

    #[test]
    fn axpy4_and_sub4_match_sequential_updates_exactly() {
        let f = [0.3, -1.7, 2.2, 0.9];
        let rows: Vec<Vec<f64>> = (0..4)
            .map(|r| (0..9).map(|j| ((r * 9 + j) as f64 * 0.13).sin()).collect())
            .collect();
        let base: Vec<f64> = (0..9).map(|j| (j as f64 * 0.41).cos()).collect();

        let mut reference = base.clone();
        for (j, c) in reference.iter_mut().enumerate() {
            for s in 0..4 {
                *c += f[s] * rows[s][j];
            }
        }
        let mut c = base.clone();
        axpy4(&mut c, f, &rows[0], &rows[1], &rows[2], &rows[3]);
        assert_eq!(c, reference, "axpy4 must match per-element ascending-k updates");

        let mut reference = base.clone();
        for (j, c) in reference.iter_mut().enumerate() {
            for s in 0..4 {
                *c -= f[s] * rows[s][j];
            }
        }
        let mut c = base;
        sub4(&mut c, f, &rows[0], &rows[1], &rows[2], &rows[3]);
        assert_eq!(c, reference, "sub4 must match per-element ascending-k updates");
    }
}
