//! Extreme-eigenvalue estimation for symmetric matrices (power iteration
//! with spectral shifting).
//!
//! Used to turn the binary passivity verdict (Cholesky succeeds/fails)
//! into a quantitative **passivity margin**: the smallest eigenvalue of
//! the VPEC circuit matrix `Ĝ` measures how far a sparsified model sits
//! from the passivity boundary, and how much additional truncation it
//! could tolerate.

use crate::{DenseMatrix, NumericsError};

/// Result of an extreme-eigenvalue estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EigenExtremes {
    /// Smallest eigenvalue.
    pub min: f64,
    /// Largest eigenvalue.
    pub max: f64,
    /// Power-iteration sweeps used.
    pub iterations: usize,
}

impl EigenExtremes {
    /// Spectral condition number `max/min` (∞ if `min ≤ 0`).
    pub fn condition(&self) -> f64 {
        if self.min <= 0.0 {
            f64::INFINITY
        } else {
            self.max / self.min
        }
    }
}

/// Largest-magnitude eigenvalue of a symmetric matrix by power iteration
/// (deterministic start vector with a fallback restart for unlucky
/// orthogonality).
fn dominant_eigenvalue(a: &DenseMatrix<f64>, max_iters: usize, tol: f64) -> (f64, usize) {
    let n = a.rows();
    if n == 0 {
        return (0.0, 0);
    }
    let mut best = (0.0f64, 0usize);
    for attempt in 0..2 {
        // Deterministic pseudo-random start, different per attempt.
        let mut v: Vec<f64> = (0..n)
            .map(|i| ((i * 2654435761 + attempt * 97 + 1) % 1000) as f64 / 1000.0 + 0.1)
            .collect();
        let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        v.iter_mut().for_each(|x| *x /= norm);
        let mut lambda = 0.0f64;
        let mut iters = 0;
        for k in 0..max_iters {
            iters = k + 1;
            let w = a.matvec(&v).expect("square matrix");
            let new_lambda: f64 = v.iter().zip(w.iter()).map(|(x, y)| x * y).sum();
            let wn = w.iter().map(|x| x * x).sum::<f64>().sqrt();
            if wn < f64::MIN_POSITIVE {
                lambda = 0.0;
                break;
            }
            v = w.into_iter().map(|x| x / wn).collect();
            if (new_lambda - lambda).abs() <= tol * new_lambda.abs().max(1e-300) {
                lambda = new_lambda;
                break;
            }
            lambda = new_lambda;
        }
        if lambda.abs() > best.0.abs() {
            best = (lambda, iters);
        }
    }
    best
}

/// Estimates the smallest and largest eigenvalues of a **symmetric**
/// matrix.
///
/// Method: power iteration gives the largest-magnitude eigenvalue `μ`;
/// shifting by it (`μ·I − A` or `A − μ·I`) and iterating again reaches the
/// opposite end of the spectrum. Accuracy is `tol`-limited and adequate
/// for margins/conditioning, not for tight clustered spectra.
///
/// # Errors
///
/// [`NumericsError::NotSquare`] for non-square input.
pub fn symmetric_extremes(
    a: &DenseMatrix<f64>,
    max_iters: usize,
    tol: f64,
) -> Result<EigenExtremes, NumericsError> {
    if !a.is_square() {
        return Err(NumericsError::NotSquare {
            found: (a.rows(), a.cols()),
        });
    }
    let n = a.rows();
    if n == 0 {
        return Ok(EigenExtremes {
            min: 0.0,
            max: 0.0,
            iterations: 0,
        });
    }
    // Gershgorin shift: c bounds |λ|, so A + c·I has a nonnegative
    // spectrum and its dominant eigenvalue is unambiguously λ_max + c —
    // this sidesteps the ±λ tie that defeats plain power iteration on
    // indefinite matrices.
    let c = (0..n)
        .map(|i| (0..n).map(|j| a[(i, j)].abs()).sum::<f64>())
        .fold(0.0f64, f64::max)
        + 1.0;
    let lifted = DenseMatrix::from_fn(n, n, |i, j| {
        let d = if i == j { c } else { 0.0 };
        d + a[(i, j)]
    });
    let (mu_lifted, it1) = dominant_eigenvalue(&lifted, max_iters, tol);
    let lam_max = mu_lifted - c;
    // Second stage: (λ_max·I − A) has spectrum λ_max − λᵢ ≥ 0; its
    // dominant eigenvalue is λ_max − λ_min.
    let shifted = DenseMatrix::from_fn(n, n, |i, j| {
        let d = if i == j { lam_max } else { 0.0 };
        d - a[(i, j)]
    });
    let (nu, it2) = dominant_eigenvalue(&shifted, max_iters, tol);
    let lam_min = lam_max - nu;
    Ok(EigenExtremes {
        min: lam_min,
        max: lam_max,
        iterations: it1 + it2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(vals: &[f64]) -> DenseMatrix<f64> {
        let n = vals.len();
        DenseMatrix::from_fn(n, n, |i, j| if i == j { vals[i] } else { 0.0 })
    }

    #[test]
    fn diagonal_matrix_extremes() {
        let e = symmetric_extremes(&diag(&[3.0, -1.0, 7.0, 2.0]), 500, 1e-12).unwrap();
        assert!((e.max - 7.0).abs() < 1e-6, "max {}", e.max);
        assert!((e.min + 1.0).abs() < 1e-6, "min {}", e.min);
        assert_eq!(e.condition(), f64::INFINITY);
    }

    #[test]
    fn spd_matrix_has_positive_margin() {
        // Eigenvalues of [[2,1],[1,2]] are 1 and 3.
        let a = DenseMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).unwrap();
        let e = symmetric_extremes(&a, 500, 1e-12).unwrap();
        assert!((e.min - 1.0).abs() < 1e-6);
        assert!((e.max - 3.0).abs() < 1e-6);
        assert!((e.condition() - 3.0).abs() < 1e-5);
    }

    #[test]
    fn indefinite_matrix_detected() {
        // [[0,1],[1,0]]: eigenvalues ±1.
        let a = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let e = symmetric_extremes(&a, 500, 1e-12).unwrap();
        assert!((e.max - 1.0).abs() < 1e-6);
        assert!((e.min + 1.0).abs() < 1e-6);
    }

    #[test]
    fn negative_definite_matrix() {
        let e = symmetric_extremes(&diag(&[-2.0, -5.0]), 500, 1e-12).unwrap();
        assert!((e.max + 2.0).abs() < 1e-6);
        assert!((e.min + 5.0).abs() < 1e-6);
    }

    #[test]
    fn rejects_non_square_and_handles_empty() {
        assert!(symmetric_extremes(&DenseMatrix::zeros(2, 3), 10, 1e-6).is_err());
        let e = symmetric_extremes(&DenseMatrix::zeros(0, 0), 10, 1e-6).unwrap();
        assert_eq!(e.min, 0.0);
        assert_eq!(e.max, 0.0);
    }

    #[test]
    fn agrees_with_cholesky_on_definiteness() {
        // A borderline matrix: eigenvalues ~ {eps, 2}.
        let eps = 1e-6;
        let a = DenseMatrix::from_rows(&[
            &[1.0 + eps / 2.0, -1.0],
            &[-1.0, 1.0 + eps / 2.0],
        ])
        .unwrap();
        let e = symmetric_extremes(&a, 5000, 1e-14).unwrap();
        assert!(e.min > 0.0 && e.min < 1e-3, "tiny positive margin: {}", e.min);
        assert!(crate::Cholesky::new(&a).is_ok());
    }
}
