//! The [`Scalar`] abstraction that lets the dense/sparse solvers run in both
//! real (`f64`, transient analysis) and complex ([`Complex64`], AC analysis)
//! arithmetic.

use crate::Complex64;
use std::fmt::{Debug, Display};
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A field element usable by the factorization kernels.
///
/// Implemented for `f64` and [`Complex64`]. The trait is sealed in spirit —
/// the solvers only need these two instantiations — but is left open so
/// downstream experiments (e.g. interval or extended-precision scalars) can
/// reuse the kernels.
pub trait Scalar:
    Copy
    + Debug
    + Display
    + PartialEq
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + Send
    + Sync
    + 'static
{
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Embeds a real number.
    fn from_f64(x: f64) -> Self;
    /// Magnitude (absolute value / modulus) used for pivot selection.
    fn modulus(self) -> f64;
    /// `true` if the value is exactly zero.
    fn is_zero(self) -> bool {
        self == Self::zero()
    }
    /// `true` if any component is NaN.
    fn is_nan(self) -> bool;
    /// `true` when the scalar type is real (`f64`). Gates the real-only
    /// code paths (the iterative Krylov solvers) at compile time inside
    /// generic solver code; complex AC systems stay on the direct
    /// factorizations.
    const IS_REAL: bool;
    /// The real part, discarding any imaginary component. Only meaningful
    /// on paths guarded by [`Scalar::IS_REAL`], where it is exact.
    fn real_part(self) -> f64;
}

impl Scalar for f64 {
    #[inline]
    fn zero() -> Self {
        0.0
    }
    #[inline]
    fn one() -> Self {
        1.0
    }
    #[inline]
    fn from_f64(x: f64) -> Self {
        x
    }
    #[inline]
    fn modulus(self) -> f64 {
        self.abs()
    }
    #[inline]
    fn is_nan(self) -> bool {
        f64::is_nan(self)
    }
    const IS_REAL: bool = true;
    #[inline]
    fn real_part(self) -> f64 {
        self
    }
}

impl Scalar for Complex64 {
    #[inline]
    fn zero() -> Self {
        Complex64::ZERO
    }
    #[inline]
    fn one() -> Self {
        Complex64::ONE
    }
    #[inline]
    fn from_f64(x: f64) -> Self {
        Complex64::from_real(x)
    }
    #[inline]
    fn modulus(self) -> f64 {
        self.abs()
    }
    #[inline]
    fn is_nan(self) -> bool {
        Complex64::is_nan(self)
    }
    const IS_REAL: bool = false;
    #[inline]
    fn real_part(self) -> f64 {
        self.re
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Scalar>() {
        let two = T::from_f64(2.0);
        assert_eq!(two + T::zero(), two);
        assert_eq!(two * T::one(), two);
        assert!((two.modulus() - 2.0).abs() < 1e-15);
        assert!(T::zero().is_zero());
        assert!(!two.is_zero());
        assert!(!two.is_nan());
        assert!((two.real_part() - 2.0).abs() < 1e-15);
    }

    #[test]
    fn is_real_distinguishes_the_two_fields() {
        const { assert!(<f64 as Scalar>::IS_REAL) };
        const { assert!(!<Complex64 as Scalar>::IS_REAL) };
        assert_eq!(Complex64::new(3.0, 4.0).real_part(), 3.0);
    }

    #[test]
    fn f64_scalar() {
        roundtrip::<f64>();
    }

    #[test]
    fn complex_scalar() {
        roundtrip::<Complex64>();
        let z = Complex64::new(3.0, 4.0);
        assert!((Scalar::modulus(z) - 5.0).abs() < 1e-15);
    }
}
