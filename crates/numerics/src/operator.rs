//! The [`LinearOperator`] abstraction the Krylov solvers iterate over.
//!
//! GMRES and CG only ever need `y = A·x`; abstracting that one product
//! lets the same solver run over a [`CsrMatrix`], a [`DenseMatrix`], or a
//! matrix-free operator (e.g. the VPEC `Dₗ L⁻¹ Dₗ` product applied
//! without forming `L⁻¹`). The iterative path is real-valued only: the
//! transient MNA systems it targets are `f64`, and complex AC sweeps stay
//! on the direct factorizations.

use crate::{CsrMatrix, DenseMatrix};

/// A real square linear operator `A: ℝⁿ → ℝⁿ` defined by its action.
pub trait LinearOperator {
    /// The operator dimension `n`.
    fn dim(&self) -> usize;

    /// Computes `y = A·x`, overwriting `y`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `x.len()` or `y.len()` differ from
    /// [`LinearOperator::dim`]; the solvers validate shapes up front.
    fn apply(&self, x: &[f64], y: &mut [f64]);

    /// An estimate of the operator norm `‖A‖∞` (max absolute row sum),
    /// used by the Krylov solvers to monitor the normwise *backward
    /// error* `‖b − A·x‖ / (‖A‖·‖x‖ + ‖b‖)` instead of the plain
    /// `‖b − A·x‖ / ‖b‖` — on stiff systems the latter has an attainable
    /// floor of `ε·‖A‖‖x‖/‖b‖`, which can sit many orders above any
    /// fixed tolerance. `None` (the default for matrix-free operators)
    /// falls back to the `‖b‖`-relative criterion.
    fn norm_inf_est(&self) -> Option<f64> {
        None
    }
}

impl LinearOperator for CsrMatrix<f64> {
    fn dim(&self) -> usize {
        self.rows()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        for (i, yi) in y.iter_mut().enumerate() {
            let (cols, vals) = self.row(i);
            let mut acc = 0.0;
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                acc += v * x[c];
            }
            *yi = acc;
        }
    }

    fn norm_inf_est(&self) -> Option<f64> {
        let mut worst = 0.0f64;
        for i in 0..self.rows() {
            let (_, vals) = self.row(i);
            worst = worst.max(vals.iter().map(|v| v.abs()).sum());
        }
        Some(worst)
    }
}

impl LinearOperator for DenseMatrix<f64> {
    fn dim(&self) -> usize {
        self.rows()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        for (i, yi) in y.iter_mut().enumerate() {
            let row = self.row(i);
            let mut acc = 0.0;
            for (&a, &b) in row.iter().zip(x.iter()) {
                acc += a * b;
            }
            *yi = acc;
        }
    }

    fn norm_inf_est(&self) -> Option<f64> {
        let mut worst = 0.0f64;
        for i in 0..self.rows() {
            worst = worst.max(self.row(i).iter().map(|v| v.abs()).sum());
        }
        Some(worst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    #[test]
    fn csr_and_dense_agree() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 2.0).unwrap();
        coo.push(0, 2, -1.0).unwrap();
        coo.push(1, 1, 3.0).unwrap();
        coo.push(2, 0, 1.0).unwrap();
        coo.push(2, 2, 4.0).unwrap();
        let csr = coo.to_csr();
        let dense = csr.to_dense();
        let x = [1.0, 2.0, 3.0];
        let mut y1 = [0.0; 3];
        let mut y2 = [0.0; 3];
        csr.apply(&x, &mut y1);
        dense.apply(&x, &mut y2);
        assert_eq!(y1, y2);
        assert_eq!(y1, [-1.0, 6.0, 13.0]);
        assert_eq!(LinearOperator::dim(&csr), 3);
    }
}
