//! Dense LU factorization with partial pivoting.
//!
//! The full-VPEC extraction inverts the partial-inductance matrix `L`
//! (paper §II-B: "the major computation effort is the inversion of the L
//! matrix"); this factorization is the `O(N³)` workhorse whose cost the
//! windowed wVPEC extraction is designed to avoid.

use crate::cancel::CancelToken;
use crate::kernel;
use crate::pool::{self, Pool};
use crate::{DenseMatrix, NumericsError, Scalar};

/// An LU factorization `P·A = L·U` with partial (row) pivoting.
///
/// # Example
///
/// ```
/// use vpec_numerics::{DenseMatrix, LuFactor};
///
/// # fn main() -> Result<(), vpec_numerics::NumericsError> {
/// let a = DenseMatrix::from_rows(&[&[0.0, 2.0], &[1.0, 1.0]])?;
/// let lu = LuFactor::new(&a)?;
/// let x = lu.solve(&[2.0, 3.0])?;
/// assert!((x[0] - 2.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct LuFactor<T = f64> {
    /// Packed L (unit lower, below diagonal) and U (upper incl. diagonal).
    lu: DenseMatrix<T>,
    /// Row permutation: `perm[k]` is the original row now in position `k`.
    perm: Vec<usize>,
    /// Sign of the permutation (`+1` or `-1`), for determinants.
    perm_sign: f64,
}

impl<T: Scalar> std::fmt::Debug for LuFactor<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LuFactor")
            .field("dim", &self.lu.rows())
            .field("perm", &self.perm)
            .field("perm_sign", &self.perm_sign)
            .finish()
    }
}

impl<T: Scalar> LuFactor<T> {
    /// Factors `A` in-place-on-a-copy with partial pivoting.
    ///
    /// # Errors
    ///
    /// * [`NumericsError::NotSquare`] if `A` is not square.
    /// * [`NumericsError::Singular`] if a pivot column is exactly zero below
    ///   the diagonal.
    pub fn new(a: &DenseMatrix<T>) -> Result<Self, NumericsError> {
        Self::with_threads(a, pool::max_threads())
    }

    /// Factors `A` with an explicit worker count (`1` forces the serial
    /// elimination). Results are bit-identical for any thread count — both
    /// the striped and blocked paths distribute trailing-submatrix rows
    /// over workers without changing per-row arithmetic order.
    ///
    /// # Errors
    ///
    /// Same as [`LuFactor::new`].
    pub fn with_threads(a: &DenseMatrix<T>, threads: usize) -> Result<Self, NumericsError> {
        Self::with_threads_cancel(a, threads, &CancelToken::none())
    }

    /// [`LuFactor::with_threads`] with cooperative cancellation: the token
    /// is polled once per elimination column and a set token aborts with
    /// [`NumericsError::Cancelled`]. This is the engine's deadline hook
    /// into the `O(N³)` factor phase.
    ///
    /// # Errors
    ///
    /// Same as [`LuFactor::new`], plus [`NumericsError::Cancelled`].
    pub fn with_threads_cancel(
        a: &DenseMatrix<T>,
        threads: usize,
        cancel: &CancelToken,
    ) -> Result<Self, NumericsError> {
        if !a.is_square() {
            return Err(NumericsError::NotSquare {
                found: (a.rows(), a.cols()),
            });
        }
        let n = a.rows();
        let _sp = vpec_trace::span!(
            "lu.factor",
            "dim" => n,
            "mode" => pool::lu_elim_mode(n, threads),
        );
        let mut lu = a.clone();
        let (perm, perm_sign) = pool::lu_eliminate_cancel(lu.as_mut_slice(), n, threads, cancel)?;
        Ok(LuFactor { lu, perm, perm_sign })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A·x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] if `b.len() != dim()`.
    pub fn solve(&self, b: &[T]) -> Result<Vec<T>, NumericsError> {
        let mut x = Vec::with_capacity(self.dim());
        self.solve_into(b, &mut x)?;
        Ok(x)
    }

    /// Solves `A·x = b` into a caller-owned buffer, reusing its capacity.
    ///
    /// The transient inner loop calls this once per time step; reusing the
    /// buffer avoids a per-step allocation.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] if `b.len() != dim()`.
    pub fn solve_into(&self, b: &[T], x: &mut Vec<T>) -> Result<(), NumericsError> {
        let n = self.dim();
        if b.len() != n {
            return Err(NumericsError::DimensionMismatch {
                op: "lu solve",
                expected: (n, 1),
                found: (b.len(), 1),
            });
        }
        x.clear();
        x.extend(self.perm.iter().map(|&p| b[p]));
        self.substitute_in_place(x);
        vpec_trace::counter_add("lu.solve.count", 1);
        Ok(())
    }

    /// Forward/back substitution on an already-permuted right-hand side.
    /// Both sweeps reduce a row slice against the solved prefix/suffix of
    /// `x` with the four-accumulator [`kernel::dot4`] — an audited-close
    /// reassociation of the serial sum, deterministic for a given input.
    ///
    /// Numerical class: audited-close.
    fn substitute_in_place(&self, x: &mut [T]) {
        let n = x.len();
        for i in 1..n {
            let (solved, rest) = x.split_at_mut(i);
            let row = self.lu.row(i);
            rest[0] -= kernel::dot4(&row[..i], solved);
        }
        for i in (0..n).rev() {
            let (head, solved) = x.split_at_mut(i + 1);
            let row = self.lu.row(i);
            head[i] = (head[i] - kernel::dot4(&row[i + 1..], solved)) / row[i];
        }
    }

    /// Solves for several right-hand sides given as columns of `B`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] if `B.rows() != dim()`.
    pub fn solve_matrix(&self, b: &DenseMatrix<T>) -> Result<DenseMatrix<T>, NumericsError> {
        let n = self.dim();
        if b.rows() != n {
            return Err(NumericsError::DimensionMismatch {
                op: "lu solve_matrix",
                expected: (n, b.cols()),
                found: (b.rows(), b.cols()),
            });
        }
        // Columns are independent solves; map them in parallel (order-
        // preserving, so results match the serial column-by-column loop
        // exactly) and gather into the output.
        let nt = pool::threads_for(b.cols(), pool::par_min_cols());
        let _sp = vpec_trace::span!(
            "lu.solve_matrix",
            "cols" => b.cols(),
            "mode" => if nt > 1 { "parallel" } else { "serial" },
            "workers" => nt,
        );
        let cols = Pool::with_threads(nt).par_map_index(b.cols(), |j| {
            let mut x: Vec<T> = self.perm.iter().map(|&p| b[(p, j)]).collect();
            self.substitute_in_place(&mut x);
            x
        });
        let mut out = DenseMatrix::zeros(n, b.cols());
        for (j, x) in cols.iter().enumerate() {
            for (i, v) in x.iter().enumerate() {
                out[(i, j)] = *v;
            }
        }
        Ok(out)
    }

    /// Computes `A⁻¹` by solving against the identity.
    ///
    /// This is the paper's "inversion-based VPEC" step: `S = L⁻¹`.
    ///
    /// # Errors
    ///
    /// Propagates solve errors (cannot occur for a successfully factored
    /// matrix of matching dimension).
    pub fn inverse(&self) -> Result<DenseMatrix<T>, NumericsError> {
        self.solve_matrix(&DenseMatrix::identity(self.dim()))
    }

    /// [`LuFactor::inverse`] with cooperative cancellation: the token is
    /// polled once per inverse column and a set token aborts with
    /// [`NumericsError::Cancelled`].
    ///
    /// # Errors
    ///
    /// [`NumericsError::Cancelled`] when the token fires; otherwise same
    /// as [`LuFactor::inverse`].
    pub fn inverse_cancel(&self, cancel: &CancelToken) -> Result<DenseMatrix<T>, NumericsError> {
        let n = self.dim();
        let b = DenseMatrix::<T>::identity(n);
        // Mirrors solve_matrix, with a per-column poll: a cancelled column
        // returns empty and the flag is re-checked below, so late
        // cancellation skips the remaining O(n²) substitutions.
        let nt = pool::threads_for(n, pool::par_min_cols());
        let _sp = vpec_trace::span!(
            "lu.solve_matrix",
            "cols" => n,
            "mode" => if nt > 1 { "parallel" } else { "serial" },
            "workers" => nt,
        );
        let cols = Pool::with_threads(nt).par_map_index(n, |j| {
            if cancel.is_cancelled() {
                return Vec::new();
            }
            let mut x: Vec<T> = self.perm.iter().map(|&p| b[(p, j)]).collect();
            self.substitute_in_place(&mut x);
            x
        });
        if cancel.is_cancelled() {
            return Err(NumericsError::Cancelled { op: "lu inverse" });
        }
        let mut out = DenseMatrix::zeros(n, n);
        for (j, x) in cols.iter().enumerate() {
            for (i, v) in x.iter().enumerate() {
                out[(i, j)] = *v;
            }
        }
        Ok(out)
    }

    /// Determinant of `A` (product of U's diagonal times permutation sign).
    pub fn det(&self) -> T {
        let mut d = T::from_f64(self.perm_sign);
        for i in 0..self.dim() {
            d *= self.lu[(i, i)];
        }
        d
    }

    /// A cheap condition estimate: `max|uᵢᵢ| / min|uᵢᵢ|` over U's diagonal.
    ///
    /// Not a rigorous condition number, but a useful smell test for the
    /// near-singular inductance matrices produced by degenerate geometry.
    pub fn diag_condition_estimate(&self) -> f64 {
        let n = self.dim();
        let mut lo = f64::INFINITY;
        let mut hi = 0.0f64;
        for i in 0..n {
            let m = self.lu[(i, i)].modulus();
            lo = lo.min(m);
            hi = hi.max(m);
        }
        if lo == 0.0 {
            f64::INFINITY
        } else {
            hi / lo
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Complex64;

    #[test]
    fn solves_known_system() {
        let a = DenseMatrix::from_rows(&[
            &[2.0, 1.0, -1.0],
            &[-3.0, -1.0, 2.0],
            &[-2.0, 1.0, 2.0],
        ])
        .unwrap();
        let lu = LuFactor::new(&a).unwrap();
        let x = lu.solve(&[8.0, -11.0, -3.0]).unwrap();
        // Classic system with solution (2, 3, -1).
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
        assert!((x[2] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let lu = LuFactor::new(&a).unwrap();
        let x = lu.solve(&[5.0, 7.0]).unwrap();
        assert_eq!(x, vec![7.0, 5.0]);
    }

    #[test]
    fn singular_matrix_is_detected() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(
            LuFactor::new(&a),
            Err(NumericsError::Singular { .. })
        ));
    }

    #[test]
    fn non_square_rejected() {
        let a = DenseMatrix::<f64>::zeros(2, 3);
        assert!(matches!(
            LuFactor::new(&a),
            Err(NumericsError::NotSquare { .. })
        ));
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = DenseMatrix::from_rows(&[
            &[4.0, -2.0, 1.0],
            &[-2.0, 4.0, -2.0],
            &[1.0, -2.0, 4.0],
        ])
        .unwrap();
        let inv = LuFactor::new(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        let eye = DenseMatrix::identity(3);
        assert!(prod.max_abs_diff(&eye).unwrap() < 1e-12);
    }

    #[test]
    fn determinant_matches_hand_computation() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let lu = LuFactor::new(&a).unwrap();
        assert!((lu.det() + 2.0).abs() < 1e-12);
    }

    #[test]
    fn complex_solve() {
        let a = DenseMatrix::from_rows(&[
            &[Complex64::new(1.0, 1.0), Complex64::ZERO],
            &[Complex64::ONE, Complex64::I],
        ])
        .unwrap();
        let lu = LuFactor::new(&a).unwrap();
        let b = [Complex64::new(2.0, 2.0), Complex64::new(1.0, 1.0)];
        let x = lu.solve(&b).unwrap();
        // x0 = (2+2i)/(1+i) = 2; x1 = (1+i-2)/i = (-1+i)/i = 1+i... check:
        // i*x1 = b1 - x0 = (1+i) - 2 = -1+i => x1 = (-1+i)/i = (−1+i)(−i)/1 = i+1.
        assert!((x[0] - Complex64::new(2.0, 0.0)).abs() < 1e-12);
        assert!((x[1] - Complex64::new(1.0, 1.0)).abs() < 1e-12);
    }

    #[test]
    fn solve_rejects_wrong_rhs_length() {
        let a = DenseMatrix::<f64>::identity(2);
        let lu = LuFactor::new(&a).unwrap();
        assert!(lu.solve(&[1.0]).is_err());
    }

    #[test]
    fn cancelled_token_aborts_factor_and_inverse() {
        let a = DenseMatrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]).unwrap();
        let t = CancelToken::new();
        t.cancel();
        assert!(matches!(
            LuFactor::with_threads_cancel(&a, 1, &t),
            Err(NumericsError::Cancelled { .. })
        ));
        let lu = LuFactor::new(&a).unwrap();
        assert!(matches!(
            lu.inverse_cancel(&t),
            Err(NumericsError::Cancelled { .. })
        ));
        // A disarmed token reproduces the plain inverse exactly.
        let inv = lu.inverse_cancel(&CancelToken::none()).unwrap();
        assert_eq!(inv.as_slice(), lu.inverse().unwrap().as_slice());
    }

    #[test]
    fn condition_estimate_flags_near_singular() {
        let nice = DenseMatrix::<f64>::identity(3);
        assert!(LuFactor::new(&nice).unwrap().diag_condition_estimate() < 10.0);
        let nasty =
            DenseMatrix::from_rows(&[&[1.0, 0.0], &[0.0, 1e-14]]).unwrap();
        assert!(LuFactor::new(&nasty).unwrap().diag_condition_estimate() > 1e12);
    }
}
