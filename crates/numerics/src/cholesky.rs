//! Dense Cholesky factorization for symmetric positive-definite matrices.
//!
//! Plays two roles in the VPEC flow:
//!
//! * **Extraction** — the partial-inductance matrix `L` and the coupling-
//!   window submatrices `L⁽ᵐ⁾` are s.p.d., so Cholesky is the natural (and
//!   2× cheaper) factorization for the inversion and windowed solves.
//! * **Passivity verification** — a matrix is positive definite iff its
//!   Cholesky factorization succeeds, which is exactly how the passivity
//!   checker certifies Theorem 1 (`Ĝ` positive definite) on concrete models.

use crate::cancel::CancelToken;
use crate::kernel;
use crate::pool::{self, Pool};
use crate::{DenseMatrix, NumericsError};

/// Cholesky factorization `A = G·Gᵀ` of a symmetric positive-definite real
/// matrix (G lower-triangular).
///
/// # Example
///
/// ```
/// use vpec_numerics::{Cholesky, DenseMatrix};
///
/// # fn main() -> Result<(), vpec_numerics::NumericsError> {
/// let a = DenseMatrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]])?;
/// let ch = Cholesky::new(&a)?;
/// let x = ch.solve(&[1.0, 0.0])?;
/// assert!((4.0 * x[0] + 2.0 * x[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Lower-triangular factor, stored densely (upper part zero).
    g: DenseMatrix<f64>,
}

impl Cholesky {
    /// Factors a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; symmetry of the input is the
    /// caller's responsibility (use [`DenseMatrix::is_symmetric`] to check).
    ///
    /// # Errors
    ///
    /// * [`NumericsError::NotSquare`] if `a` is not square.
    /// * [`NumericsError::NotPositiveDefinite`] if a diagonal pivot is not
    ///   strictly positive — i.e. the matrix fails the passivity criterion.
    pub fn new(a: &DenseMatrix<f64>) -> Result<Self, NumericsError> {
        Self::with_threads(a, pool::max_threads())
    }

    /// Factors with an explicit worker count (`1` forces the serial
    /// left-looking elimination). Parallel results are bit-identical to
    /// serial — the striped update preserves per-row arithmetic order.
    ///
    /// # Errors
    ///
    /// Same as [`Cholesky::new`].
    pub fn with_threads(a: &DenseMatrix<f64>, threads: usize) -> Result<Self, NumericsError> {
        Self::with_threads_cancel(a, threads, &CancelToken::none())
    }

    /// [`Cholesky::with_threads`] with cooperative cancellation: the token
    /// is polled once per elimination column and a set token aborts with
    /// [`NumericsError::Cancelled`]. This is the engine's deadline hook
    /// into the `O(N³)` factor phase.
    ///
    /// # Errors
    ///
    /// Same as [`Cholesky::new`], plus [`NumericsError::Cancelled`].
    pub fn with_threads_cancel(
        a: &DenseMatrix<f64>,
        threads: usize,
        cancel: &CancelToken,
    ) -> Result<Self, NumericsError> {
        if !a.is_square() {
            return Err(NumericsError::NotSquare {
                found: (a.rows(), a.cols()),
            });
        }
        let n = a.rows();
        let _sp = vpec_trace::span!(
            "cholesky.factor",
            "dim" => n,
            "mode" => pool::cholesky_elim_mode(n, threads),
        );
        let mut g = DenseMatrix::<f64>::zeros(n, n);
        pool::cholesky_eliminate_cancel(a.as_slice(), g.as_mut_slice(), n, threads, cancel)?;
        Ok(Cholesky { g })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.g.rows()
    }

    /// The lower-triangular factor `G`.
    pub fn factor(&self) -> &DenseMatrix<f64> {
        &self.g
    }

    /// Solves `A·x = b` via `G·y = b`, `Gᵀ·x = y`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] if `b.len() != dim()`.
    ///
    /// Numerical class: audited-close (the forward sweep reduces rows
    /// with the four-accumulator [`kernel::dot4`]).
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, NumericsError> {
        let n = self.dim();
        if b.len() != n {
            return Err(NumericsError::DimensionMismatch {
                op: "cholesky solve",
                expected: (n, 1),
                found: (b.len(), 1),
            });
        }
        let mut x = b.to_vec();
        // Forward sweep G·y = b, reducing each row slice against the
        // solved prefix of x with the four-accumulator `kernel::dot4`
        // (audited-close reassociation, deterministic per input).
        for i in 0..n {
            let (solved, rest) = x.split_at_mut(i);
            let row = self.g.row(i);
            rest[0] = (rest[0] - kernel::dot4(&row[..i], solved)) / row[i];
        }
        // Back sweep Gᵀ·x = y in saxpy form: as each xⱼ finalizes, its
        // contribution is swept into the remaining prefix using row j of G
        // as a contiguous slice (instead of striding down column j).
        for j in (0..n).rev() {
            let row = self.g.row(j);
            let xj = x[j] / row[j];
            x[j] = xj;
            for (xi, &gji) in x[..j].iter_mut().zip(row[..j].iter()) {
                *xi -= gji * xj;
            }
        }
        Ok(x)
    }

    /// Computes `A⁻¹` column by column.
    ///
    /// # Errors
    ///
    /// Cannot fail for a successfully constructed factorization; the
    /// `Result` mirrors [`Cholesky::solve`].
    pub fn inverse(&self) -> Result<DenseMatrix<f64>, NumericsError> {
        self.inverse_cancel(&CancelToken::none())
    }

    /// [`Cholesky::inverse`] with cooperative cancellation: the token is
    /// polled once per inverse column and a set token aborts with
    /// [`NumericsError::Cancelled`] — the deadline hook into the
    /// `S = L⁻¹` hot path of the full VPEC extraction.
    ///
    /// # Errors
    ///
    /// [`NumericsError::Cancelled`] when the token fires; otherwise cannot
    /// fail for a successfully constructed factorization.
    pub fn inverse_cancel(&self, cancel: &CancelToken) -> Result<DenseMatrix<f64>, NumericsError> {
        let n = self.dim();
        // Columns of the inverse are independent unit-vector solves — the
        // `S = L⁻¹` hot path of the full VPEC extraction. par_map_index is
        // order-preserving, so the result matches the serial loop exactly.
        // A cancelled column returns empty and the flag is re-checked
        // below, so late cancellation skips the remaining O(n²) solves.
        let nt = pool::threads_for(n, pool::par_min_cols());
        let _sp = vpec_trace::span!(
            "cholesky.inverse",
            "dim" => n,
            "mode" => if nt > 1 { "parallel" } else { "serial" },
            "workers" => nt,
        );
        let cols = Pool::with_threads(nt).par_map_index(n, |j| {
            if cancel.is_cancelled() {
                return Vec::new();
            }
            let mut e = vec![0.0; n];
            e[j] = 1.0;
            self.solve(&e).expect("unit vector has factored dimension")
        });
        if cancel.is_cancelled() {
            return Err(NumericsError::Cancelled {
                op: "cholesky inverse",
            });
        }
        let mut inv = DenseMatrix::zeros(n, n);
        for (j, col) in cols.iter().enumerate() {
            for (i, v) in col.iter().enumerate() {
                inv[(i, j)] = *v;
            }
        }
        Ok(inv)
    }

    /// Log-determinant of `A` (numerically robust for large matrices).
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.g[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// Convenience: `true` iff `a` is symmetric (to `sym_tol`) and positive
    /// definite. This is the concrete passivity test used throughout the
    /// VPEC crates.
    pub fn is_spd(a: &DenseMatrix<f64>, sym_tol: f64) -> bool {
        a.is_symmetric(sym_tol) && Cholesky::new(a).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> DenseMatrix<f64> {
        DenseMatrix::from_rows(&[
            &[4.0, 12.0, -16.0],
            &[12.0, 37.0, -43.0],
            &[-16.0, -43.0, 98.0],
        ])
        .unwrap()
    }

    #[test]
    fn factors_known_matrix() {
        // Classic example: G = [[2,0,0],[6,1,0],[-8,5,3]].
        let ch = Cholesky::new(&spd3()).unwrap();
        let g = ch.factor();
        assert!((g[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((g[(1, 0)] - 6.0).abs() < 1e-12);
        assert!((g[(1, 1)] - 1.0).abs() < 1e-12);
        assert!((g[(2, 0)] + 8.0).abs() < 1e-12);
        assert!((g[(2, 1)] - 5.0).abs() < 1e-12);
        assert!((g[(2, 2)] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_reconstructs_rhs() {
        let a = spd3();
        let ch = Cholesky::new(&a).unwrap();
        let b = [1.0, -2.0, 3.5];
        let x = ch.solve(&b).unwrap();
        let back = a.matvec(&x).unwrap();
        for (u, v) in back.iter().zip(b.iter()) {
            assert!((u - v).abs() < 1e-9);
        }
    }

    #[test]
    fn rejects_indefinite() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert!(matches!(
            Cholesky::new(&a),
            Err(NumericsError::NotPositiveDefinite { row: 1 })
        ));
    }

    #[test]
    fn rejects_non_square() {
        let a = DenseMatrix::<f64>::zeros(2, 3);
        assert!(matches!(
            Cholesky::new(&a),
            Err(NumericsError::NotSquare { .. })
        ));
    }

    #[test]
    fn inverse_is_correct() {
        let a = spd3();
        let inv = Cholesky::new(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.max_abs_diff(&DenseMatrix::identity(3)).unwrap() < 1e-9);
    }

    #[test]
    fn log_det_matches_lu_det() {
        let a = spd3();
        let ld = Cholesky::new(&a).unwrap().log_det();
        let det = crate::LuFactor::new(&a).unwrap().det();
        assert!((ld - det.ln()).abs() < 1e-9);
    }

    #[test]
    fn spd_predicate() {
        assert!(Cholesky::is_spd(&spd3(), 1e-12));
        let asym = DenseMatrix::from_rows(&[&[2.0, 1.0], &[0.0, 2.0]]).unwrap();
        assert!(!Cholesky::is_spd(&asym, 1e-12));
        let indef = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        assert!(!Cholesky::is_spd(&indef, 1e-12));
    }

    #[test]
    fn solve_rejects_wrong_length() {
        let ch = Cholesky::new(&DenseMatrix::identity(3)).unwrap();
        assert!(ch.solve(&[1.0]).is_err());
    }

    #[test]
    fn cancelled_token_aborts_factor_and_inverse() {
        let t = CancelToken::new();
        t.cancel();
        assert!(matches!(
            Cholesky::with_threads_cancel(&spd3(), 1, &t),
            Err(NumericsError::Cancelled { .. })
        ));
        let ch = Cholesky::new(&spd3()).unwrap();
        assert!(matches!(
            ch.inverse_cancel(&t),
            Err(NumericsError::Cancelled { .. })
        ));
        // A disarmed token changes nothing.
        let inv = ch.inverse_cancel(&CancelToken::none()).unwrap();
        assert_eq!(inv, ch.inverse().unwrap());
    }
}
