//! `vpec-analyze` — standalone entry point for the workspace lint gate.
//!
//! Exit codes: 0 = clean (or lint disabled), 1 = gate-failing findings,
//! 2 = usage or environment error (unreadable tree, malformed baseline).

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;
use vpec_analyze::{baseline, engine, Baseline, Config};

const USAGE: &str = "\
vpec-analyze — static analysis over the vpec workspace sources

USAGE:
    vpec-analyze [--root DIR] [--baseline FILE] [--write-baseline] [--strict]

OPTIONS:
    --root DIR         workspace root to scan (default: .)
    --baseline FILE    grandfathered-findings file
                       (default: <root>/lint.baseline; missing file = empty)
    --write-baseline   regenerate the baseline from current findings and exit
    --strict           warnings also fail the gate
    -h, --help         print this help

ENVIRONMENT:
    VPEC_LINT          off     skip the pass entirely (exit 0)
                       default normal gate (deny findings fail)
                       strict  same as --strict
";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("vpec-analyze: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(argv: &[String]) -> Result<ExitCode, String> {
    let mut root = PathBuf::from(".");
    let mut baseline_path: Option<PathBuf> = None;
    let mut write_baseline = false;
    let mut strict = false;

    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                root = PathBuf::from(
                    it.next().ok_or_else(|| "--root needs a value".to_string())?,
                );
            }
            "--baseline" => {
                baseline_path = Some(PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--baseline needs a value".to_string())?,
                ));
            }
            "--write-baseline" => write_baseline = true,
            "--strict" => strict = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown argument `{other}`\n\n{USAGE}")),
        }
    }

    match std::env::var("VPEC_LINT").as_deref() {
        Ok("off") => {
            println!("vpec-analyze: skipped (VPEC_LINT=off)");
            return Ok(ExitCode::SUCCESS);
        }
        Ok("strict") => strict = true,
        Ok("default") | Ok("") | Err(_) => {}
        Ok(other) => {
            return Err(format!(
                "VPEC_LINT=`{other}` is not one of off|default|strict"
            ))
        }
    }

    let baseline_path = baseline_path.unwrap_or_else(|| root.join("lint.baseline"));
    let cfg = Config::for_workspace(root);

    let bl = if write_baseline {
        // Regeneration ignores the old file: the new one IS the state.
        Baseline::default()
    } else {
        match std::fs::read_to_string(&baseline_path) {
            Ok(text) => Baseline::parse(&text)
                .map_err(|e| format!("{}: {e}", baseline_path.display()))?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Baseline::default(),
            Err(e) => return Err(format!("{}: {e}", baseline_path.display())),
        }
    };

    let report = engine::run(&cfg, &bl).map_err(|e| e.to_string())?;

    if write_baseline {
        let text = baseline::render(&report.post_waiver);
        std::fs::write(&baseline_path, &text)
            .map_err(|e| format!("{}: {e}", baseline_path.display()))?;
        println!(
            "vpec-analyze: wrote {} with {} entries ({} files, {} lines scanned)",
            baseline_path.display(),
            text.lines().filter(|l| !l.starts_with('#') && !l.is_empty()).count(),
            report.files_scanned,
            report.lines_scanned,
        );
        return Ok(ExitCode::SUCCESS);
    }

    for f in &report.findings {
        println!("{}", f.render());
    }
    println!(
        "vpec-analyze: {} files, {} lines scanned; {} new finding(s), {} baselined, {} waived",
        report.files_scanned,
        report.lines_scanned,
        report.findings.len(),
        report.baselined,
        report.waived,
    );
    if report.gate_fails(strict) {
        println!(
            "vpec-analyze: FAIL — fix the finding, waive it inline with a reason \
             (`// vpec-allow: <lint> -- <why>`), or regenerate the baseline \
             (--write-baseline) if this is a deliberate policy change"
        );
        Ok(ExitCode::FAILURE)
    } else {
        Ok(ExitCode::SUCCESS)
    }
}
