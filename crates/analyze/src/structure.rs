//! Token-level structure recovery: `#[cfg(test)]` regions, delimiter
//! matching and function-body extraction.
//!
//! Working on the token stream (not raw text) means braces inside
//! strings, chars and comments can no longer unbalance anything.

use crate::lexer::{Tok, TokKind};

/// Returns true for tokens that are code (not comments).
pub fn is_code(t: &Tok) -> bool {
    t.kind != TokKind::LineComment && t.kind != TokKind::BlockComment
}

/// Index of the next code token at or after `i`, if any.
pub fn next_code(toks: &[Tok], i: usize) -> Option<usize> {
    (i..toks.len()).find(|&j| is_code(&toks[j]))
}

/// Given `toks[open]` an opening delimiter (`(`, `[` or `{`), returns the
/// index of its matching closer, or `toks.len() - 1` if unbalanced input
/// runs out first.
pub fn match_delim(src: &str, toks: &[Tok], open: usize) -> usize {
    let (o, c) = match toks[open].text(src) {
        "(" => ("(", ")"),
        "[" => ("[", "]"),
        _ => ("{", "}"),
    };
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            let txt = t.text(src);
            if txt == o {
                depth += 1;
            } else if txt == c {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Byte ranges of test-only code: the item following `#[cfg(test)]` (or
/// any `cfg(...)` attribute whose argument mentions `test`) and `#[test]`
/// functions. An attribute followed by `{ … }` covers the braced body; an
/// attribute followed by a `;`-terminated item covers up to the `;`.
pub fn test_regions(src: &str, toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Punct && t.text(src) == "#" {
            let Some(b) = next_code(toks, i + 1) else { break };
            // `#![…]` inner attributes configure the enclosing scope, not
            // a following item; skip them.
            if toks[b].text(src) == "[" {
                let close = match_delim(src, toks, b);
                if attr_is_test(src, &toks[b + 1..close]) {
                    let start = t.start;
                    if let Some(end_idx) = item_end(src, toks, close + 1) {
                        regions.push((start, toks[end_idx].end));
                        i = end_idx + 1;
                        continue;
                    }
                }
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
    merge(regions)
}

/// Whether the attribute token slice (content between `[` and `]`)
/// marks test-only code: `test`, `cfg(test)`, `cfg(all(test, …))`, ….
fn attr_is_test(src: &str, attr: &[Tok]) -> bool {
    let idents: Vec<&str> = attr
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text(src))
        .collect();
    match idents.as_slice() {
        ["test"] => true,
        [first, rest @ ..] if *first == "cfg" => rest.contains(&"test"),
        _ => false,
    }
}

/// Index of the token ending the item that starts at code-token position
/// `from` (skipping further attributes): the `}` closing its first brace
/// block, or the first `;` at depth zero, whichever comes first.
fn item_end(src: &str, toks: &[Tok], from: usize) -> Option<usize> {
    let mut i = from;
    while let Some(j) = next_code(toks, i) {
        let t = &toks[j];
        if t.kind == TokKind::Punct {
            match t.text(src) {
                // A follow-on attribute: skip it wholesale.
                "#" => {
                    let b = next_code(toks, j + 1)?;
                    if toks[b].text(src) == "[" {
                        i = match_delim(src, toks, b) + 1;
                        continue;
                    }
                }
                "{" => return Some(match_delim(src, toks, j)),
                ";" => return Some(j),
                // Delimited groups before the body (generics carry no
                // braces; parameter lists / where-clause arrays do).
                "(" | "[" => {
                    i = match_delim(src, toks, j) + 1;
                    continue;
                }
                _ => {}
            }
        }
        i = j + 1;
    }
    None
}

/// Merges overlapping/nested byte ranges.
fn merge(mut regions: Vec<(usize, usize)>) -> Vec<(usize, usize)> {
    regions.sort_unstable();
    let mut out: Vec<(usize, usize)> = Vec::with_capacity(regions.len());
    for r in regions {
        match out.last_mut() {
            Some(last) if r.0 <= last.1 => last.1 = last.1.max(r.1),
            _ => out.push(r),
        }
    }
    out
}

/// Whether byte offset `pos` falls inside any of the (sorted) regions.
pub fn in_regions(regions: &[(usize, usize)], pos: usize) -> bool {
    regions
        .binary_search_by(|&(s, e)| {
            if pos < s {
                std::cmp::Ordering::Greater
            } else if pos > e {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Equal
            }
        })
        .is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn regions_of(src: &str) -> Vec<(usize, usize)> {
        test_regions(src, &lex(src))
    }

    #[test]
    fn cfg_test_mod_is_a_region() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let rs = regions_of(src);
        assert_eq!(rs.len(), 1);
        let unwrap_at = src.find("unwrap").unwrap();
        assert!(in_regions(&rs, unwrap_at));
        assert!(!in_regions(&rs, src.find("live").unwrap()));
        assert!(!in_regions(&rs, src.find("after").unwrap()));
    }

    #[test]
    fn test_attribute_fn_is_a_region() {
        let src = "#[test]\nfn check() { assert!(true); }\nfn live() {}\n";
        let rs = regions_of(src);
        assert!(in_regions(&rs, src.find("assert").unwrap()));
        assert!(!in_regions(&rs, src.find("live").unwrap()));
    }

    #[test]
    fn cfg_all_test_counts() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nmod t { fn f() {} }\nfn live() {}\n";
        let rs = regions_of(src);
        assert!(in_regions(&rs, src.find("fn f").unwrap()));
        assert!(!in_regions(&rs, src.find("live").unwrap()));
    }

    #[test]
    fn cfg_not_test_still_counts_conservatively() {
        // `cfg(not(test))` mentions test; treating it as a test region is
        // the conservative direction for panic-freedom (fewer findings),
        // and such gating is vanishingly rare in this workspace.
        let src = "#[cfg(not(test))]\nfn f() {}\n";
        assert_eq!(regions_of(src).len(), 1);
    }

    #[test]
    fn non_test_cfg_is_not_a_region() {
        let src = "#[cfg(feature = \"simd\")]\nfn f() { x.unwrap(); }\n";
        assert!(regions_of(src).is_empty());
    }

    #[test]
    fn semicolon_items_end_at_semicolon() {
        let src = "#[cfg(test)]\nuse helpers::*;\nfn live() {}\n";
        let rs = regions_of(src);
        assert_eq!(rs.len(), 1);
        assert!(!in_regions(&rs, src.find("live").unwrap()));
    }

    #[test]
    fn attribute_stacks_are_skipped() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nfn t() { body(); }\nfn live() {}\n";
        let rs = regions_of(src);
        assert!(in_regions(&rs, src.find("body").unwrap()));
        assert!(!in_regions(&rs, src.find("live").unwrap()));
    }

    #[test]
    fn braces_in_strings_do_not_unbalance() {
        let src = "#[cfg(test)]\nmod t { fn f() { let s = \"}}}\"; inner(); } }\nfn live() {}\n";
        let rs = regions_of(src);
        assert!(in_regions(&rs, src.find("inner").unwrap()));
        assert!(!in_regions(&rs, src.find("live").unwrap()));
    }

    #[test]
    fn inner_attributes_do_not_consume_items() {
        let src = "#![cfg(test)]\nfn f() {}\n";
        // `#!` is an inner attribute: no following-item region.
        assert!(regions_of(src).is_empty());
    }
}
