//! The lint engine: file discovery, pass orchestration, waivers,
//! baseline, report.
//!
//! `run` walks the workspace tree, lexes every `.rs` file once, feeds the
//! token stream to each lint pass, applies inline waivers, and splits the
//! surviving findings against the committed baseline. The engine is
//! hermetic: filesystem reads under `Config::root` are its only effect.

use crate::baseline::Baseline;
use crate::diag::{Finding, LintId, Severity};
use crate::lexer::{lex, Tok};
use crate::lints::{self, numerical_class, FileCtx};
use crate::structure::test_regions;
use crate::waiver::{self, Waiver};
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// What to scan and which policies to enforce. Construct via
/// [`Config::for_workspace`] for the real tree, or field-by-field for
/// fixture corpora.
#[derive(Debug, Clone)]
pub struct Config {
    /// Workspace root; all reported paths are relative to it.
    pub root: PathBuf,
    /// Crates whose `src/` trees must be panic-free (`panic-freedom`).
    pub panic_crates: Vec<String>,
    /// Root-relative modules allowed to contain `unsafe`, with their
    /// pinned `#[allow(unsafe_code)]` counts (`unsafe-audit`).
    pub unsafe_allowlist: Vec<(String, usize)>,
    /// Root-relative modules where every non-test `fn` must declare a
    /// `Numerical class:` marker (`numerical-class`).
    pub kernel_modules: Vec<String>,
    /// Root-relative files whose text documents the `VPEC_*` environment
    /// variables (`env-var-registry`).
    pub registry_files: Vec<String>,
    /// Root-relative path prefixes to skip entirely (fixture corpora,
    /// build output).
    pub exclude_prefixes: Vec<String>,
}

impl Config {
    /// The policy for this workspace. Changes here are policy changes:
    /// keep the unsafe allowlist in lockstep with the crate docs in
    /// `crates/numerics/src/lib.rs`, and the registry list in lockstep
    /// with where `USAGE` lives.
    pub fn for_workspace(root: PathBuf) -> Config {
        let owned = |xs: &[&str]| xs.iter().map(|s| s.to_string()).collect();
        Config {
            root,
            panic_crates: owned(&["numerics", "core", "circuit", "extract", "engine", "metrics"]),
            unsafe_allowlist: vec![("crates/numerics/src/pool.rs".to_string(), 3)],
            kernel_modules: owned(&["crates/numerics/src/kernel.rs"]),
            registry_files: owned(&["crates/cli/src/lib.rs"]),
            exclude_prefixes: owned(&["crates/analyze/fixtures", "target"]),
        }
    }
}

/// The outcome of one engine run.
#[derive(Debug)]
pub struct Report {
    /// Findings that count against the gate: post-waiver, not baselined,
    /// sorted by (file, line, col).
    pub findings: Vec<Finding>,
    /// All post-waiver findings including grandfathered ones — this is
    /// what `--write-baseline` serializes.
    pub post_waiver: Vec<Finding>,
    /// How many findings the baseline absorbed.
    pub baselined: usize,
    /// How many findings inline waivers suppressed.
    pub waived: usize,
    /// `.rs` files scanned.
    pub files_scanned: usize,
    /// Source lines scanned.
    pub lines_scanned: usize,
}

impl Report {
    /// Whether the gate fails: any deny finding, or any finding at all
    /// under strict mode.
    pub fn gate_fails(&self, strict: bool) -> bool {
        self.findings
            .iter()
            .any(|f| strict || f.severity == Severity::Deny)
    }
}

/// Per-file state carried between pass 1 (per-file lints) and pass 2
/// (cross-file numerical-class call check).
struct FileData {
    file: String,
    src: String,
    toks: Vec<Tok>,
    regions: Vec<(usize, usize)>,
    fns: Vec<numerical_class::ClassifiedFn>,
    findings: Vec<Finding>,
    waivers: Vec<Waiver>,
}

/// Runs every lint over the tree under `cfg.root` and reconciles the
/// result against `baseline`.
pub fn run(cfg: &Config, baseline: &Baseline) -> io::Result<Report> {
    let mut paths = Vec::new();
    discover(&cfg.root, &cfg.root, &cfg.exclude_prefixes, &mut paths)?;
    paths.sort();

    let registry = load_registry(cfg);

    let mut files = Vec::with_capacity(paths.len());
    let mut lines_scanned = 0usize;
    for path in &paths {
        let rel = rel_path(&cfg.root, path);
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            // Non-UTF-8 bytes cannot be Rust source; skip defensively.
            Err(e) if e.kind() == io::ErrorKind::InvalidData => continue,
            Err(e) => return Err(io::Error::new(e.kind(), format!("{}: {e}", path.display()))),
        };
        lines_scanned += src.lines().count();
        let toks = lex(&src);
        let regions = test_regions(&src, &toks);
        let ctx = FileCtx {
            src: &src,
            toks: &toks,
            file: &rel,
            test_regions: &regions,
        };

        let mut findings = Vec::new();
        findings.extend(lints::nan_ordering::run(&ctx));
        if lints::panic_freedom::applies(&rel, &cfg.panic_crates) {
            findings.extend(lints::panic_freedom::run(&ctx));
        }
        findings.extend(lints::unsafe_audit::run(&ctx, &cfg.unsafe_allowlist));
        findings.extend(lints::env_registry::run(&ctx, &registry));
        let (fns, class_findings) =
            numerical_class::collect(&ctx, cfg.kernel_modules.contains(&rel));
        findings.extend(class_findings);

        let (waivers, waiver_findings) = waiver::collect(&src, &toks, &rel);
        findings.extend(waiver_findings);

        files.push(FileData {
            file: rel,
            src,
            toks,
            regions,
            fns,
            findings,
            waivers,
        });
    }

    // Pass 2: the workspace-wide class map, then the lexical call check.
    let mut classes: BTreeMap<String, numerical_class::Class> = BTreeMap::new();
    for fd in &files {
        for f in &fd.fns {
            classes.insert(f.name.clone(), f.class);
        }
    }
    let mut post_waiver = Vec::new();
    let mut waived_total = 0usize;
    for fd in &mut files {
        let ctx = FileCtx {
            src: &fd.src,
            toks: &fd.toks,
            file: &fd.file,
            test_regions: &fd.regions,
        };
        let cross = numerical_class::check(&ctx, &fd.fns, &classes);
        fd.findings.extend(cross);
        let (kept, waived) =
            waiver::apply(std::mem::take(&mut fd.findings), &fd.waivers, &fd.src, &fd.file);
        waived_total += waived;
        post_waiver.extend(kept);
    }
    post_waiver.sort_by(|a, b| {
        (&a.file, a.line, a.col, a.lint).cmp(&(&b.file, b.line, b.col, b.lint))
    });

    let (grandfathered, new): (Vec<Finding>, Vec<Finding>) = post_waiver
        .iter()
        .cloned()
        .partition(|f| f.lint != LintId::Waiver && baseline.contains(f));

    Ok(Report {
        findings: new,
        post_waiver,
        baselined: grandfathered.len(),
        waived: waived_total,
        files_scanned: files.len(),
        lines_scanned,
    })
}

/// Recursively collects `.rs` files under `dir`, skipping hidden
/// directories, `target/`, and configured prefixes.
fn discover(
    dir: &Path,
    root: &Path,
    exclude_prefixes: &[String],
    out: &mut Vec<PathBuf>,
) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') {
            continue;
        }
        let rel = rel_path(root, &path);
        if exclude_prefixes
            .iter()
            .any(|p| rel == *p || rel.starts_with(&format!("{p}/")))
        {
            continue;
        }
        let ty = entry.file_type()?;
        if ty.is_dir() {
            if name == "target" {
                continue;
            }
            discover(&path, root, exclude_prefixes, out)?;
        } else if ty.is_file() && name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Root-relative path with `/` separators.
fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Union of the documented `VPEC_*` names over every registry file.
/// Missing registry files contribute nothing (fixture configs may name
/// none at all).
fn load_registry(cfg: &Config) -> std::collections::BTreeSet<String> {
    let mut reg = std::collections::BTreeSet::new();
    for rf in &cfg.registry_files {
        if let Ok(text) = std::fs::read_to_string(cfg.root.join(rf)) {
            reg.extend(lints::env_registry::registry_from(&text));
        }
    }
    reg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_config_is_internally_consistent() {
        let cfg = Config::for_workspace(PathBuf::from("."));
        // The unsafe allowlist lives inside a panic-free crate: both
        // policies must name the same tree or the docs lie.
        for (path, pinned) in &cfg.unsafe_allowlist {
            assert!(path.starts_with("crates/"), "{path}");
            assert!(*pinned > 0);
        }
        // Fixture corpora must be excluded, or the engine lints its own
        // seeded positives.
        assert!(cfg
            .exclude_prefixes
            .iter()
            .any(|p| p.contains("fixtures")));
    }

    #[test]
    fn gate_semantics() {
        let deny = Finding {
            lint: LintId::NanOrdering,
            severity: Severity::Deny,
            file: "f.rs".into(),
            line: 1,
            col: 1,
            message: "m".into(),
            snippet: "s".into(),
        };
        let warn = Finding {
            severity: Severity::Warn,
            lint: LintId::Waiver,
            ..deny.clone()
        };
        let mk = |findings| Report {
            findings,
            post_waiver: Vec::new(),
            baselined: 0,
            waived: 0,
            files_scanned: 0,
            lines_scanned: 0,
        };
        assert!(!mk(vec![]).gate_fails(false));
        assert!(!mk(vec![]).gate_fails(true));
        assert!(mk(vec![deny.clone()]).gate_fails(false));
        assert!(!mk(vec![warn.clone()]).gate_fails(false));
        assert!(mk(vec![warn]).gate_fails(true));
        assert!(mk(vec![deny]).gate_fails(true));
    }
}
