//! `nan-ordering`: the thrice-fixed NaN-unsafe float-ordering class.
//!
//! `PartialOrd` on floats returns `None` for NaN; code that funnels it
//! through `partial_cmp(..).unwrap()` panics on the first NaN, and
//! `unwrap_or(Equal)` silently de-sorts — both have corrupted window
//! selection in this repo before (PR 3, PR 8). The fix is `total_cmp`,
//! which orders NaN deterministically, usually after validating
//! finiteness at the boundary.
//!
//! Findings fire on every `partial_cmp` call in code (string literals
//! and comments never trigger), anchored at the enclosing
//! `sort_by`/`sort_unstable_by`/`max_by`/`min_by` combinator when there
//! is one so a chain reads as a single finding. Comparator combinators
//! whose closure uses `total_cmp` (or integer `cmp`) are clean.
//! Deliberate NaN-propagation checks (`x.partial_cmp(&y) !=
//! Some(Greater)` treats NaN as a violation) carry an inline waiver
//! stating exactly that.

use super::FileCtx;
use crate::diag::{Finding, LintId, Severity};
use crate::lexer::TokKind;
use crate::structure::{match_delim, next_code};

/// Comparator combinators worth anchoring a finding at.
const COMBINATORS: [&str; 4] = ["sort_by", "sort_unstable_by", "max_by", "min_by"];

/// Runs the lint. Applies to all code, tests included: a NaN-unsafe test
/// comparator masks exactly the bug class the tests exist to catch.
pub fn run(ctx: &FileCtx<'_>) -> Vec<Finding> {
    let mut out = Vec::new();
    // partial_cmp tokens already reported via an enclosing combinator.
    let mut consumed = vec![false; ctx.toks.len()];
    for i in 0..ctx.toks.len() {
        let t = &ctx.toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let name = ctx.text(i);
        if COMBINATORS.contains(&name) && ctx.ident_then(i, name, "(") {
            let open = next_code(ctx.toks, i + 1).expect("checked by ident_then");
            let close = match_delim(ctx.src, ctx.toks, open);
            let inner: Vec<usize> = (open + 1..close)
                .filter(|&j| {
                    ctx.toks[j].kind == TokKind::Ident && ctx.text(j) == "partial_cmp"
                })
                .collect();
            if !inner.is_empty() {
                for &j in &inner {
                    consumed[j] = true;
                }
                out.push(ctx.finding(
                    LintId::NanOrdering,
                    Severity::Deny,
                    t,
                    format!(
                        "`{name}` comparator uses `partial_cmp` — NaN de-sorts or panics \
                         here; compare with `total_cmp` (validate finiteness first if NaN \
                         must be an error)"
                    ),
                ));
            }
        }
    }
    for (i, t) in ctx.toks.iter().enumerate() {
        if t.kind == TokKind::Ident && ctx.text(i) == "partial_cmp" && !consumed[i] {
            out.push(ctx.finding(
                LintId::NanOrdering,
                Severity::Deny,
                t,
                "`partial_cmp` on floats is `None` for NaN — use `total_cmp` for \
                 ordering, or waive with the reason NaN deliberately maps to a \
                 violation/short-circuit"
                    .to_string(),
            ));
        }
    }
    out.sort_by_key(|f| (f.line, f.col));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::structure::test_regions;

    fn run_on(src: &str) -> Vec<Finding> {
        let toks = lex(src);
        let regions = test_regions(src, &toks);
        run(&FileCtx {
            src,
            toks: &toks,
            file: "f.rs",
            test_regions: &regions,
        })
    }

    #[test]
    fn flags_partial_cmp_sort_once_at_the_combinator() {
        let fs = run_on("fn f(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }");
        assert_eq!(fs.len(), 1);
        assert!(fs[0].message.contains("sort_by"));
        let fs = run_on("let m = xs.iter().max_by(|a, b| a.partial_cmp(b).unwrap_or(Eq));");
        assert_eq!(fs.len(), 1);
        assert!(fs[0].message.contains("max_by"));
    }

    #[test]
    fn flags_bare_partial_cmp() {
        let fs = run_on("if a.partial_cmp(&b) != Some(Ordering::Greater) { bail(); }");
        assert_eq!(fs.len(), 1);
        assert!(fs[0].message.contains("total_cmp"));
    }

    #[test]
    fn total_cmp_forms_are_clean() {
        assert!(run_on("v.sort_by(|a, b| a.total_cmp(b));").is_empty());
        assert!(run_on("v.sort_by(|a, b| a.abs().total_cmp(&b.abs()));").is_empty());
        assert!(run_on("v.sort_unstable_by(f64::total_cmp);").is_empty());
        assert!(run_on("pairs.sort_by(|a, b| b.1.cmp(&a.1));").is_empty());
        assert!(run_on("xs.sort_by_key(|&v| deg[v]);").is_empty());
    }

    #[test]
    fn strings_and_comments_do_not_trigger() {
        assert!(run_on("// a.partial_cmp(b).unwrap() would be bad\nlet x = 1;").is_empty());
        assert!(run_on("let s = \"partial_cmp\"; /* sort_by partial_cmp */").is_empty());
        assert!(run_on("let s = r#\"v.sort_by(|a,b| a.partial_cmp(b))\"#;").is_empty());
    }

    #[test]
    fn fires_inside_test_code_too() {
        let src = "#[cfg(test)]\nmod t {\n fn f() { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n}\n";
        assert_eq!(run_on(src).len(), 1);
    }
}
