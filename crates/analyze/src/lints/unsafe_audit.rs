//! `unsafe-audit`: every `unsafe` is allowlisted, justified and counted.
//!
//! The workspace denies `unsafe_code` everywhere except the striped
//! elimination engine (`crates/numerics/src/pool.rs`), whose
//! row-disjoint `SharedRows` view needs it. This lint makes that policy
//! checkable:
//!
//! * any `unsafe` token or `#[allow(unsafe_code)]` attribute outside the
//!   allowlisted modules is a finding;
//! * inside an allowlisted module, every `unsafe` must carry a
//!   `// SAFETY:` comment (or a `# Safety` doc section for `unsafe fn`)
//!   on the same line or within the five lines above it;
//! * the `#[allow(unsafe_code)]` count per allowlisted file is pinned
//!   exactly — growth *and* shrinkage are findings, so prose like the
//!   `numerics/src/lib.rs` crate docs can never drift from reality
//!   again (it already did once, claiming one escape hatch when there
//!   were three).

use super::FileCtx;
use crate::diag::{Finding, LintId, Severity};
use crate::lexer::TokKind;
use crate::structure::{match_delim, next_code};

/// How far above an `unsafe` token its SAFETY comment may sit (lines).
const SAFETY_WINDOW: u32 = 5;

/// Runs the lint. `allowlist` maps root-relative module paths to their
/// pinned `#[allow(unsafe_code)]` count.
pub fn run(ctx: &FileCtx<'_>, allowlist: &[(String, usize)]) -> Vec<Finding> {
    let mut out = Vec::new();
    let pinned = allowlist
        .iter()
        .find(|(p, _)| p == ctx.file)
        .map(|&(_, n)| n);

    // Comment lines that discharge a SAFETY obligation.
    let safety_comments: Vec<(u32, u32)> = ctx
        .toks
        .iter()
        .filter(|t| {
            (t.kind == TokKind::LineComment || t.kind == TokKind::BlockComment)
                && (t.text(ctx.src).contains("SAFETY:") || t.text(ctx.src).contains("# Safety"))
        })
        .map(|t| (t.line, t.end_line))
        .collect();

    let mut allow_count = 0usize;
    let mut first_allow_tok = None;
    for i in 0..ctx.toks.len() {
        let t = &ctx.toks[i];
        if t.kind != TokKind::Ident {
            // `#[allow(unsafe_code)]`: detect at the `#`.
            if t.kind == TokKind::Punct && ctx.text(i) == "#" {
                if let Some(b) = next_code(ctx.toks, i + 1) {
                    if ctx.text(b) == "[" {
                        let close = match_delim(ctx.src, ctx.toks, b);
                        let idents: Vec<&str> = ctx.toks[b + 1..close]
                            .iter()
                            .filter(|a| a.kind == TokKind::Ident)
                            .map(|a| a.text(ctx.src))
                            .collect();
                        if idents == ["allow", "unsafe_code"] {
                            allow_count += 1;
                            first_allow_tok.get_or_insert(i);
                            if pinned.is_none() {
                                out.push(ctx.finding(
                                    LintId::UnsafeAudit,
                                    Severity::Deny,
                                    t,
                                    "`#[allow(unsafe_code)]` outside the allowlisted modules \
                                     — keep unsafe in `crates/numerics/src/pool.rs` (or extend \
                                     the allowlist in `vpec_analyze::Config` with a pinned \
                                     count and a design-doc entry)"
                                        .to_string(),
                                ));
                            }
                        }
                    }
                }
            }
            continue;
        }
        if ctx.text(i) != "unsafe" {
            continue;
        }
        if pinned.is_none() {
            out.push(ctx.finding(
                LintId::UnsafeAudit,
                Severity::Deny,
                t,
                "`unsafe` outside the allowlisted modules — the workspace promise is \
                 safe code everywhere but the striped elimination engine"
                    .to_string(),
            ));
            continue;
        }
        let covered = safety_comments.iter().any(|&(start, end)| {
            end + SAFETY_WINDOW >= t.line && start <= t.line
        });
        if !covered {
            out.push(ctx.finding(
                LintId::UnsafeAudit,
                Severity::Deny,
                t,
                format!(
                    "`unsafe` without a `// SAFETY:` comment (or `# Safety` doc section) \
                     on the same line or within the {SAFETY_WINDOW} lines above — state \
                     the invariant that makes this sound"
                ),
            ));
        }
    }

    if let Some(expected) = pinned {
        if allow_count != expected && !ctx.toks.is_empty() {
            let anchor = first_allow_tok.map_or(&ctx.toks[0], |i| &ctx.toks[i]);
            out.push(ctx.finding(
                LintId::UnsafeAudit,
                Severity::Deny,
                anchor,
                format!(
                    "{} has {allow_count} `#[allow(unsafe_code)]` attributes but the \
                     allowlist pins exactly {expected} — update the pin in \
                     `vpec_analyze::Config::for_workspace` AND the crate-doc comment in \
                     `crates/numerics/src/lib.rs` so prose and policy move together",
                    ctx.file
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::structure::test_regions;

    fn run_on(file: &str, src: &str, allowlist: &[(String, usize)]) -> Vec<Finding> {
        let toks = lex(src);
        let regions = test_regions(src, &toks);
        run(
            &FileCtx {
                src,
                toks: &toks,
                file,
                test_regions: &regions,
            },
            allowlist,
        )
    }

    fn pool_allow(n: usize) -> Vec<(String, usize)> {
        vec![("crates/numerics/src/pool.rs".to_string(), n)]
    }

    #[test]
    fn unsafe_outside_allowlist_is_flagged() {
        let fs = run_on(
            "crates/core/src/x.rs",
            "fn f() { unsafe { *p } }",
            &pool_allow(1),
        );
        assert_eq!(fs.len(), 1);
        assert!(fs[0].message.contains("outside the allowlisted"));
    }

    #[test]
    fn allow_attr_outside_allowlist_is_flagged() {
        let fs = run_on(
            "crates/core/src/x.rs",
            "#[allow(unsafe_code)]\nmod m {}",
            &pool_allow(1),
        );
        assert_eq!(fs.len(), 1);
    }

    #[test]
    fn safety_comment_within_window_passes() {
        let src = "#[allow(unsafe_code)]\nmod m {\n// SAFETY: row-disjoint per the protocol.\nfn f() { unsafe { g() } }\n}\n";
        assert!(run_on("crates/numerics/src/pool.rs", src, &pool_allow(1)).is_empty());
        // Doc-section form for unsafe fn.
        let src = "#[allow(unsafe_code)]\n/// # Safety\n/// Caller holds the row lock.\nunsafe fn row() {}\n";
        assert!(run_on("crates/numerics/src/pool.rs", src, &pool_allow(1)).is_empty());
    }

    #[test]
    fn missing_safety_comment_is_flagged() {
        let src = "#[allow(unsafe_code)]\nmod m {\nfn f() { unsafe { g() } }\n}\n";
        let fs = run_on("crates/numerics/src/pool.rs", src, &pool_allow(1));
        assert_eq!(fs.len(), 1);
        assert!(fs[0].message.contains("SAFETY"));
        // A SAFETY comment too far above does not count.
        let src = "#[allow(unsafe_code)]\n// SAFETY: stale.\n\n\n\n\n\n\nfn f() { unsafe { g() } }\n";
        assert_eq!(
            run_on("crates/numerics/src/pool.rs", src, &pool_allow(1)).len(),
            1
        );
    }

    #[test]
    fn allow_count_is_pinned_exactly() {
        let src = "#[allow(unsafe_code)]\n// SAFETY: fine.\nfn f() { unsafe { g() } }\n";
        // Expected 2, found 1: shrinkage is drift too.
        let fs = run_on("crates/numerics/src/pool.rs", src, &pool_allow(2));
        assert_eq!(fs.len(), 1);
        assert!(fs[0].message.contains("pins exactly 2"));
        assert!(fs[0].message.contains("lib.rs"));
        // Growth is flagged symmetrically.
        let two = "#[allow(unsafe_code)]\n#[allow(unsafe_code)]\n// SAFETY: fine.\nfn f() { unsafe { g() } }\n";
        let fs = run_on("crates/numerics/src/pool.rs", two, &pool_allow(1));
        assert_eq!(fs.len(), 1);
    }

    #[test]
    fn other_lint_level_attrs_are_not_miscounted() {
        let src = "#![deny(unsafe_code)]\n#![forbid(unsafe_code)]\nfn f() {}\n";
        assert!(run_on("crates/core/src/lib.rs", src, &pool_allow(1)).is_empty());
    }

    #[test]
    fn mentions_in_comments_and_strings_are_clean() {
        let src = "// the pool needs unsafe for SharedRows\nlet s = \"unsafe\";\n";
        assert!(run_on("crates/core/src/x.rs", src, &pool_allow(1)).is_empty());
    }
}
