//! `panic-freedom`: the engine boundary promises typed errors.
//!
//! The batch engine isolates request panics with `catch_unwind`, but
//! that is crash *containment*, not error handling: a panic still tears
//! down the worker's in-flight state and surfaces as a generic
//! `RequestPanicked` instead of a typed, actionable error. Library code
//! on the request path (`numerics`, `core`, `circuit`, `extract`,
//! `engine`) must therefore return `Result` instead of calling
//! `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!`.
//!
//! Test code (`#[cfg(test)]` regions and integration-test trees) is
//! exempt — panicking is how tests fail. `assert!`/`debug_assert!` are
//! also exempt: they document invariants whose violation is a bug in
//! the caller, not a runtime condition. Pre-existing sites are
//! grandfathered in the baseline; new code must not add any.

use super::FileCtx;
use crate::diag::{Finding, LintId, Severity};
use crate::lexer::TokKind;

/// Methods that convert an error into a panic.
const PANICKY_METHODS: [&str; 2] = ["unwrap", "expect"];

/// Macros that panic unconditionally when reached.
const PANICKY_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Whether this lint applies to `file` (root-relative), given the
/// protected crate list: library sources only — `crates/<c>/src/…`.
pub fn applies(file: &str, panic_crates: &[String]) -> bool {
    panic_crates
        .iter()
        .any(|c| file.strip_prefix(&format!("crates/{c}/src/")).is_some())
}

/// Runs the lint over one in-scope file.
pub fn run(ctx: &FileCtx<'_>) -> Vec<Finding> {
    let mut out = Vec::new();
    for i in 0..ctx.toks.len() {
        let t = &ctx.toks[i];
        if t.kind != TokKind::Ident || ctx.is_test(t) {
            continue;
        }
        let name = ctx.text(i);
        if PANICKY_METHODS.contains(&name) {
            // Only method calls: `.unwrap(` / `.expect(`. A definition
            // like `fn unwrap(` or an ident named `expect` alone is not
            // a panic site, and `unwrap_or`/`expect_err` are distinct
            // idents already.
            let preceded_by_dot = i > 0
                && ctx.toks[i - 1].kind == TokKind::Punct
                && ctx.text(i - 1) == ".";
            if preceded_by_dot && ctx.ident_then(i, name, "(") {
                out.push(ctx.finding(
                    LintId::PanicFreedom,
                    Severity::Deny,
                    t,
                    format!(
                        "`.{name}()` panics at the engine boundary — return a typed error \
                         (`ok_or`/`map_err` into this crate's error enum) instead"
                    ),
                ));
            }
        } else if PANICKY_MACROS.contains(&name) && ctx.ident_then(i, name, "!") {
            out.push(ctx.finding(
                LintId::PanicFreedom,
                Severity::Deny,
                t,
                format!(
                    "`{name}!` in library code tears down the request instead of \
                     returning a typed error"
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::structure::test_regions;

    fn run_on(src: &str) -> Vec<Finding> {
        let toks = lex(src);
        let regions = test_regions(src, &toks);
        run(&FileCtx {
            src,
            toks: &toks,
            file: "crates/core/src/x.rs",
            test_regions: &regions,
        })
    }

    #[test]
    fn scope_is_library_sources_of_protected_crates() {
        let crates: Vec<String> = vec!["numerics".into(), "core".into()];
        assert!(applies("crates/numerics/src/lu.rs", &crates));
        assert!(applies("crates/core/src/a/b.rs", &crates));
        assert!(!applies("crates/numerics/tests/proptests.rs", &crates));
        assert!(!applies("crates/cli/src/main.rs", &crates));
        assert!(!applies("tests/paper_claims.rs", &crates));
    }

    #[test]
    fn flags_unwrap_expect_and_panicky_macros() {
        assert_eq!(run_on("fn f() { x.unwrap(); }").len(), 1);
        assert_eq!(run_on("fn f() { x.expect(\"msg\"); }").len(), 1);
        assert_eq!(run_on("fn f() { panic!(\"boom\"); }").len(), 1);
        assert_eq!(run_on("fn f() { unreachable!() }").len(), 1);
        assert_eq!(run_on("fn f() { todo!() }").len(), 1);
    }

    #[test]
    fn unwrap_or_family_is_clean() {
        assert!(run_on("fn f() { x.unwrap_or(0); }").is_empty());
        assert!(run_on("fn f() { x.unwrap_or_else(|| 0); }").is_empty());
        assert!(run_on("fn f() { x.unwrap_or_default(); }").is_empty());
        assert!(run_on("fn f() { x.expect_err(\"m\"); }").is_empty());
    }

    #[test]
    fn asserts_are_clean() {
        assert!(run_on("fn f() { assert!(x > 0); assert_eq!(a, b); }").is_empty());
        assert!(run_on("fn f() { debug_assert!(x.is_finite()); }").is_empty());
    }

    #[test]
    fn test_regions_are_exempt() {
        let src = "fn live() {}\n#[cfg(test)]\nmod t {\n fn f() { x.unwrap(); panic!(); }\n}\n";
        assert!(run_on(src).is_empty());
        let src = "#[test]\nfn t() { x.unwrap(); }\nfn live() { y.unwrap(); }\n";
        let fs = run_on(src);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].line, 3);
    }

    #[test]
    fn strings_and_comments_are_clean() {
        assert!(run_on("// x.unwrap() would panic\nfn f() {}").is_empty());
        assert!(run_on("fn f() { let s = \"don't unwrap() here\"; }").is_empty());
    }

    #[test]
    fn non_call_mentions_are_clean() {
        // A method *named* unwrap being defined, or passed as a path.
        assert!(run_on("impl X { fn unwrap(self) -> Y { self.0 } }").is_empty());
        assert!(run_on("let f = Option::unwrap;").is_empty());
    }
}
