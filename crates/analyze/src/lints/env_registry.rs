//! `env-var-registry`: every `VPEC_*` environment read is documented.
//!
//! The CLI usage text (`crates/cli/src/lib.rs`, the `USAGE` constant) is
//! the user-facing registry of `VPEC_*` environment variables. A
//! `std::env::var("VPEC_…")` read of a name that text never mentions is
//! doc drift: a knob users cannot discover. The registry is extracted
//! lexically — every `VPEC_[A-Z0-9_]*` word in the registry file(s) —
//! so documenting a variable anywhere in the usage text (or its doc
//! comments) registers it.

use super::FileCtx;
use crate::diag::{Finding, LintId, Severity};
use crate::lexer::{str_content, TokKind};
use crate::structure::next_code;
use std::collections::BTreeSet;

/// The namespace this lint polices.
const PREFIX: &str = "VPEC_";

/// Extracts the documented-variable registry from registry-file text:
/// every maximal `VPEC_[A-Z0-9_]*` word.
pub fn registry_from(text: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let bytes = text.as_bytes();
    let mut i = 0usize;
    while let Some(at) = text[i..].find(PREFIX) {
        let start = i + at;
        let mut end = start + PREFIX.len();
        while end < bytes.len() && (bytes[end].is_ascii_uppercase() || bytes[end].is_ascii_digit() || bytes[end] == b'_') {
            end += 1;
        }
        // A bare `VPEC_` prefix mention (e.g. "VPEC_* variables") is not
        // a variable name.
        if end > start + PREFIX.len() {
            out.insert(text[start..end].trim_end_matches('_').to_string());
        }
        i = end;
    }
    out
}

/// Runs the lint: flags `env::var`/`env::var_os` reads of `VPEC_*` names
/// missing from `registry`.
pub fn run(ctx: &FileCtx<'_>, registry: &BTreeSet<String>) -> Vec<Finding> {
    let mut out = Vec::new();
    for i in 0..ctx.toks.len() {
        let t = &ctx.toks[i];
        if t.kind != TokKind::Ident || ctx.text(i) != "env" {
            continue;
        }
        // Match `env :: var ( "VPEC_…"` / `env :: var_os ( "VPEC_…"`.
        let Some(c1) = next_code(ctx.toks, i + 1) else { continue };
        let Some(c2) = next_code(ctx.toks, c1 + 1) else { continue };
        if ctx.text(c1) != ":" || ctx.text(c2) != ":" {
            continue;
        }
        let Some(m) = next_code(ctx.toks, c2 + 1) else { continue };
        if ctx.toks[m].kind != TokKind::Ident || !matches!(ctx.text(m), "var" | "var_os") {
            continue;
        }
        let Some(p) = next_code(ctx.toks, m + 1) else { continue };
        if ctx.text(p) != "(" {
            continue;
        }
        let Some(a) = next_code(ctx.toks, p + 1) else { continue };
        if ctx.toks[a].kind != TokKind::StrLit {
            continue;
        }
        let name = str_content(ctx.text(a));
        if !name.starts_with(PREFIX) {
            continue;
        }
        if !registry.contains(name) {
            out.push(ctx.finding(
                LintId::EnvVarRegistry,
                Severity::Deny,
                &ctx.toks[a],
                format!(
                    "`{name}` is read here but not documented in the usage registry \
                     (`crates/cli/src/lib.rs` USAGE) — document the variable so users \
                     can discover it, or drop the read"
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::structure::test_regions;

    fn run_on(src: &str, registry: &[&str]) -> Vec<Finding> {
        let toks = lex(src);
        let regions = test_regions(src, &toks);
        let reg = registry.iter().map(|s| s.to_string()).collect();
        run(
            &FileCtx {
                src,
                toks: &toks,
                file: "crates/x/src/lib.rs",
                test_regions: &regions,
            },
            &reg,
        )
    }

    #[test]
    fn extracts_registry_words() {
        let reg = registry_from(
            "--threads N (default: VPEC_THREADS env). Tracing: VPEC_TRACE.\n\
             Audits via VPEC_AUDIT; profiles via VPEC_TUNE=FILE. VPEC_* reads are linted.",
        );
        for v in ["VPEC_THREADS", "VPEC_TRACE", "VPEC_AUDIT", "VPEC_TUNE"] {
            assert!(reg.contains(v), "{v} missing from {reg:?}");
        }
        // The bare `VPEC_*` wildcard is not a variable.
        assert_eq!(reg.len(), 4);
    }

    #[test]
    fn documented_reads_are_clean() {
        let src = "let v = std::env::var(\"VPEC_THREADS\").ok();";
        assert!(run_on(src, &["VPEC_THREADS"]).is_empty());
        let src = "if let Ok(v) = env::var(\"VPEC_AUDIT\") { use_it(v); }";
        assert!(run_on(src, &["VPEC_AUDIT"]).is_empty());
    }

    #[test]
    fn undocumented_reads_are_flagged() {
        let src = "let v = std::env::var(\"VPEC_SECRET_KNOB\").ok();";
        let fs = run_on(src, &["VPEC_THREADS"]);
        assert_eq!(fs.len(), 1);
        assert!(fs[0].message.contains("VPEC_SECRET_KNOB"));
        assert!(run_on("std::env::var_os(\"VPEC_HIDDEN\");", &[]).len() == 1);
    }

    #[test]
    fn non_vpec_vars_are_out_of_scope() {
        assert!(run_on("std::env::var(\"PATH\").ok();", &[]).is_empty());
        assert!(run_on("std::env::var(\"CARGO_MANIFEST_DIR\").ok();", &[]).is_empty());
    }

    #[test]
    fn dynamic_names_and_strings_elsewhere_are_out_of_scope() {
        // A computed name cannot be checked lexically; reads via a
        // variable are accepted (none exist in this workspace).
        assert!(run_on("std::env::var(name).ok();", &[]).is_empty());
        // Mentioning a VPEC_ name in a plain string is not a read.
        assert!(run_on("let s = \"VPEC_NOT_A_READ\";", &[]).is_empty());
        // set_var is a write, not a documented-surface read.
        assert!(run_on("std::env::set_var(\"VPEC_TEST_ONLY\", \"1\");", &[]).is_empty());
    }
}
