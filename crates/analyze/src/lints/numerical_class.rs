//! `numerical-class`: the PR 7 kernel contract, enforced.
//!
//! The blocked kernels split into two numerical classes. *Bit-identical*
//! paths (blocked LU trailing update, unrolled matmul) must reproduce
//! the serial reference operation-for-operation — `par_equivalence`
//! tests assert exact equality at any worker count. *Audited-close*
//! paths (four-accumulator dot products, blocked Cholesky, triangular
//! solves) reassociate sums and are covered by the audit layer's
//! tolerance machinery instead. The contract used to live only in
//! prose; this lint makes it structural:
//!
//! * every function in a designated kernel module declares its class
//!   with a doc-comment marker — `Numerical class: bit-identical` or
//!   `Numerical class: audited-close`;
//! * a lexical call-graph check forbids the body of a bit-identical
//!   function from calling an audited-close function: one reassociated
//!   dot product inside a bit-identical path silently breaks the exact
//!   per-worker-count equality the tests and the pool dispatcher rely
//!   on. (Audited-close callers may call either class — tolerance
//!   absorbs composition.)
//!
//! Markers on functions *outside* kernel modules are optional but, once
//! present, join the same call-graph check.

use super::FileCtx;
use crate::diag::{Finding, LintId, Severity};
use crate::lexer::TokKind;
use crate::structure::{match_delim, next_code};
use std::collections::BTreeMap;

/// The marker phrase looked for inside doc comments.
pub const MARKER: &str = "Numerical class:";

/// A function's declared class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Must reproduce the serial reference bit-for-bit.
    BitIdentical,
    /// Reassociates; covered by audit tolerances.
    AuditedClose,
}

impl Class {
    fn parse(s: &str) -> Option<Class> {
        match s {
            "bit-identical" => Some(Class::BitIdentical),
            "audited-close" => Some(Class::AuditedClose),
            _ => None,
        }
    }

    fn name(self) -> &'static str {
        match self {
            Class::BitIdentical => "bit-identical",
            Class::AuditedClose => "audited-close",
        }
    }
}

/// A classified function found in one file.
#[derive(Debug, Clone)]
pub struct ClassifiedFn {
    /// Function name.
    pub name: String,
    /// Declared class.
    pub class: Class,
    /// Token range of the body (indices into the file's token stream).
    pub body: (usize, usize),
    /// Line of the `fn` keyword.
    pub line: u32,
}

/// Pass 1 over one file: collect classified functions, and report
/// marker-discipline findings (unparseable class; missing marker on a
/// kernel-module function outside test code).
pub fn collect(ctx: &FileCtx<'_>, is_kernel_module: bool) -> (Vec<ClassifiedFn>, Vec<Finding>) {
    let mut fns = Vec::new();
    let mut findings = Vec::new();
    let mut i = 0usize;
    while i < ctx.toks.len() {
        let t = &ctx.toks[i];
        if t.kind != TokKind::Ident || ctx.text(i) != "fn" {
            i += 1;
            continue;
        }
        let Some(name_i) = next_code(ctx.toks, i + 1) else { break };
        if ctx.toks[name_i].kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let name = ctx.text(name_i).to_string();
        // The doc block above the fn: contiguous comments/attributes
        // directly before, scanned for the class marker.
        let class = doc_class(ctx, i, &mut findings);
        // Find the body: first `{` after the signature ( `;` first means
        // a trait method declaration — no body, nothing to check).
        let mut j = name_i + 1;
        let mut body = None;
        while let Some(k) = next_code(ctx.toks, j) {
            let txt = ctx.text(k);
            if ctx.toks[k].kind == TokKind::Punct {
                if txt == "(" || txt == "[" {
                    j = match_delim(ctx.src, ctx.toks, k) + 1;
                    continue;
                }
                if txt == "{" {
                    body = Some((k, match_delim(ctx.src, ctx.toks, k)));
                    break;
                }
                if txt == ";" {
                    break;
                }
            }
            j = k + 1;
        }
        match (class, body) {
            (Some(class), Some(body)) => fns.push(ClassifiedFn {
                name,
                class,
                body,
                line: t.line,
            }),
            (None, _) if is_kernel_module && !ctx.is_test(t) => {
                findings.push(ctx.finding(
                    LintId::NumericalClass,
                    Severity::Deny,
                    t,
                    format!(
                        "kernel function `{name}` does not declare its numerical class — \
                         add `/// {MARKER} bit-identical` (exact serial operation order) \
                         or `/// {MARKER} audited-close` (reassociated, audit-covered) \
                         to its docs"
                    ),
                ));
            }
            _ => {}
        }
        i = body.map_or(name_i + 1, |(_, e)| e + 1);
    }
    (fns, findings)
}

/// Scans the doc block directly above token `fn_i` for a class marker:
/// walking backwards over comments, attributes (`#[inline]`) and
/// visibility/qualifier tokens (`pub(crate)`, `unsafe`, `const`), and
/// stopping at any other code — so a comment trailing the *previous*
/// item can never classify this one. Emits a finding for a marker with
/// an unknown class.
fn doc_class(ctx: &FileCtx<'_>, fn_i: usize, findings: &mut Vec<Finding>) -> Option<Class> {
    const QUALIFIERS: [&str; 8] = ["pub", "crate", "super", "self", "in", "unsafe", "const", "async"];
    let mut class = None;
    let mut j = fn_i;
    while j > 0 {
        let t = &ctx.toks[j - 1];
        let txt = t.text(ctx.src);
        match t.kind {
            TokKind::LineComment | TokKind::BlockComment => {
                if let Some(at) = txt.find(MARKER) {
                    // The class is the first word after the marker;
                    // explanatory prose may follow (`audited-close (the
                    // forward sweep …)`).
                    let rest = txt[at + MARKER.len()..].trim_start();
                    let end = rest
                        .find(|c: char| !(c.is_ascii_lowercase() || c == '-'))
                        .unwrap_or(rest.len());
                    let spec = rest[..end].trim_end_matches('-');
                    match Class::parse(spec) {
                        Some(c) => class = Some(c),
                        None => findings.push(ctx.finding(
                            LintId::NumericalClass,
                            Severity::Deny,
                            t,
                            format!(
                                "unknown numerical class `{spec}` — the classes are \
                                 `bit-identical` and `audited-close`"
                            ),
                        )),
                    }
                }
                j -= 1;
            }
            TokKind::Ident if QUALIFIERS.contains(&txt) => j -= 1,
            TokKind::Punct if txt == ")" => {
                // Backward-skip a `( … )` group: `pub(crate)` / `pub(in x)`.
                let mut depth = 0i64;
                let mut k = j - 1;
                loop {
                    if ctx.toks[k].kind == TokKind::Punct {
                        match ctx.toks[k].text(ctx.src) {
                            ")" => depth += 1,
                            "(" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                    }
                    if k == 0 {
                        break;
                    }
                    k -= 1;
                }
                j = k;
            }
            TokKind::Punct if txt == "]" => {
                // Backward-skip an attribute `#[ … ]` to its `#`.
                let mut depth = 0i64;
                let mut k = j - 1;
                loop {
                    if ctx.toks[k].kind == TokKind::Punct {
                        match ctx.toks[k].text(ctx.src) {
                            "]" => depth += 1,
                            "[" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                    }
                    if k == 0 {
                        break;
                    }
                    k -= 1;
                }
                if k >= 1 && ctx.toks[k - 1].kind == TokKind::Punct
                    && ctx.toks[k - 1].text(ctx.src) == "#"
                {
                    j = k - 1;
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    class
}

/// Pass 2 over one file: check every classified function's body against
/// the global class map. `global` maps function name → class across the
/// whole workspace (lexical: names are assumed unique enough among the
/// small set of classified kernels).
pub fn check(
    ctx: &FileCtx<'_>,
    fns: &[ClassifiedFn],
    global: &BTreeMap<String, Class>,
) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in fns {
        if f.class != Class::BitIdentical {
            continue;
        }
        for k in f.body.0 + 1..f.body.1 {
            let t = &ctx.toks[k];
            if t.kind != TokKind::Ident {
                continue;
            }
            let callee = ctx.text(k);
            if callee == f.name {
                continue;
            }
            let Some(&callee_class) = global.get(callee) else {
                continue;
            };
            // A call is an ident followed by `(`; plain mentions in
            // types/paths without a call don't execute the kernel.
            if callee_class == Class::AuditedClose && ctx.ident_then(k, callee, "(") {
                out.push(ctx.finding(
                    LintId::NumericalClass,
                    Severity::Deny,
                    t,
                    format!(
                        "`{}` is declared {} but calls `{callee}`, which is declared \
                         {} — the reassociated result breaks exact serial equality; \
                         use a bit-identical helper or reclassify the caller",
                        f.name,
                        f.class.name(),
                        callee_class.name()
                    ),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::structure::test_regions;

    fn ctx_parts(src: &str) -> (Vec<crate::lexer::Tok>, Vec<(usize, usize)>) {
        let toks = lex(src);
        let regions = test_regions(src, &toks);
        (toks, regions)
    }

    fn analyze(src: &str, kernel: bool) -> (Vec<ClassifiedFn>, Vec<Finding>, Vec<Finding>) {
        let (toks, regions) = ctx_parts(src);
        let ctx = FileCtx {
            src,
            toks: &toks,
            file: "k.rs",
            test_regions: &regions,
        };
        let (fns, marker_findings) = collect(&ctx, kernel);
        let global: BTreeMap<String, Class> =
            fns.iter().map(|f| (f.name.clone(), f.class)).collect();
        let call_findings = check(&ctx, &fns, &global);
        (fns, marker_findings, call_findings)
    }

    const OK: &str = "\
/// Docs.\n/// Numerical class: audited-close.\nfn dot4(a: &[f64]) -> f64 { a[0] }\n\
/// Numerical class: bit-identical.\nfn axpy4(c: &mut [f64]) { c[0] += 1.0; }\n";

    #[test]
    fn collects_classes_from_doc_markers() {
        let (fns, marker, calls) = analyze(OK, true);
        assert!(marker.is_empty() && calls.is_empty());
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].class, Class::AuditedClose);
        assert_eq!(fns[1].class, Class::BitIdentical);
    }

    #[test]
    fn missing_marker_in_kernel_module_is_flagged() {
        let src = "fn helper(x: f64) -> f64 { x }\n";
        let (_, marker, _) = analyze(src, true);
        assert_eq!(marker.len(), 1);
        assert!(marker[0].message.contains("does not declare"));
        // Outside kernel modules the marker is optional.
        let (_, marker, _) = analyze(src, false);
        assert!(marker.is_empty());
    }

    #[test]
    fn bit_identical_calling_audited_close_is_flagged() {
        let src = "\
/// Numerical class: audited-close.\nfn dot4(a: &[f64]) -> f64 { a[0] }\n\
/// Numerical class: bit-identical.\nfn trailing(c: &mut [f64]) { c[0] -= dot4(c); }\n";
        let (_, _, calls) = analyze(src, true);
        assert_eq!(calls.len(), 1);
        assert!(calls[0].message.contains("breaks exact serial equality"));
    }

    #[test]
    fn allowed_call_directions_are_clean() {
        // audited-close → bit-identical and same-class calls are fine.
        let src = "\
/// Numerical class: bit-identical.\nfn sub4(c: &mut [f64]) { c[0] -= 1.0; }\n\
/// Numerical class: audited-close.\nfn chol(c: &mut [f64]) { sub4(c); }\n\
/// Numerical class: bit-identical.\nfn lu(c: &mut [f64]) { sub4(c); }\n";
        let (_, marker, calls) = analyze(src, true);
        assert!(marker.is_empty() && calls.is_empty());
    }

    #[test]
    fn unknown_class_is_flagged() {
        let src = "/// Numerical class: pretty-close.\nfn f(x: f64) -> f64 { x }\n";
        let (_, marker, _) = analyze(src, false);
        assert_eq!(marker.len(), 1);
        assert!(marker[0].message.contains("pretty-close"));
    }

    #[test]
    fn test_fns_in_kernel_modules_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n fn helper() {}\n #[test]\n fn t() {}\n}\n";
        let (_, marker, _) = analyze(src, true);
        assert!(marker.is_empty());
    }

    #[test]
    fn attributes_between_docs_and_fn_do_not_break_the_block() {
        let src = "/// Numerical class: bit-identical.\n#[inline]\nfn f(c: &mut [f64]) { c[0] += 1.0; }\n";
        let (fns, marker, _) = analyze(src, true);
        assert!(marker.is_empty());
        assert_eq!(fns.len(), 1);
    }

    #[test]
    fn trailing_comment_of_previous_item_does_not_classify() {
        // The marker sits inside `prev`'s body; the adjacent `f` must
        // not inherit it (and so gets flagged for a missing marker).
        let src = "fn prev() { work();\n// Numerical class: audited-close.\n}\nfn f(x: f64) -> f64 { x }\n";
        let (fns, marker, _) = analyze(src, true);
        assert!(fns.iter().all(|f| f.name != "f"));
        assert!(marker.iter().any(|m| m.message.contains("`f`")));
    }

    #[test]
    fn qualified_fns_still_see_their_docs() {
        let src = "/// Numerical class: bit-identical.\n#[inline]\npub(crate) fn f(c: &mut [f64]) { c[0] += 1.0; }\n";
        let (fns, marker, _) = analyze(src, true);
        assert!(marker.is_empty());
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].class, Class::BitIdentical);
    }

    #[test]
    fn mention_without_call_is_clean() {
        let src = "\
/// Numerical class: audited-close.\nfn dot4(a: &[f64]) -> f64 { a[0] }\n\
/// Numerical class: bit-identical.\nfn doc_ref(c: &mut [f64]) { let _f: fn(&[f64]) -> f64 = dot4; c[0] += 1.0; }\n";
        let (_, _, calls) = analyze(src, true);
        assert!(calls.is_empty());
    }
}
