//! The lint passes.
//!
//! Every lint is a pure function over a [`FileCtx`] (lexed file plus
//! precomputed test regions); the engine owns file discovery, waiver
//! application and the baseline. See `DESIGN.md` §14 for the taxonomy
//! and the recipe for adding a lint.

pub mod env_registry;
pub mod nan_ordering;
pub mod numerical_class;
pub mod panic_freedom;
pub mod unsafe_audit;

use crate::diag::{Finding, LintId, Severity};
use crate::lexer::{Tok, TokKind};
use crate::structure::in_regions;
use crate::waiver::snippet_at;

/// Everything a lint needs to look at one file.
pub struct FileCtx<'a> {
    /// File content.
    pub src: &'a str,
    /// Lexed tokens.
    pub toks: &'a [Tok],
    /// Root-relative path with `/` separators.
    pub file: &'a str,
    /// Sorted byte ranges of `#[cfg(test)]` / `#[test]` code.
    pub test_regions: &'a [(usize, usize)],
}

impl<'a> FileCtx<'a> {
    /// Whether the token lies in test-only code.
    pub fn is_test(&self, t: &Tok) -> bool {
        in_regions(self.test_regions, t.start)
    }

    /// Builds a finding anchored at a token.
    pub fn finding(
        &self,
        lint: LintId,
        severity: Severity,
        t: &Tok,
        message: String,
    ) -> Finding {
        Finding {
            lint,
            severity,
            file: self.file.to_string(),
            line: t.line,
            col: t.col,
            message,
            snippet: snippet_at(self.src, t.line),
        }
    }

    /// The text of token `i`.
    pub fn text(&self, i: usize) -> &'a str {
        self.toks[i].text(self.src)
    }

    /// Whether code token `i` is the ident `name` immediately followed
    /// (ignoring comments) by the punct `p`.
    pub fn ident_then(&self, i: usize, name: &str, p: &str) -> bool {
        self.toks[i].kind == TokKind::Ident
            && self.text(i) == name
            && crate::structure::next_code(self.toks, i + 1)
                .is_some_and(|j| self.toks[j].kind == TokKind::Punct && self.text(j) == p)
    }
}
