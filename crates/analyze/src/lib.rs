//! `vpec-analyze` — the workspace's own static-analysis pass.
//!
//! A zero-dependency lint engine over this repository's Rust sources. It
//! exists because three of the project's recurring bug classes are
//! *lexically visible*: NaN-unsafe float ordering (fixed in PR 3 and
//! again in PR 8), panics crossing the batch-engine request boundary,
//! and doc/policy drift (the `numerics` crate docs once claimed one
//! `#[allow(unsafe_code)]` escape hatch while `pool.rs` had three). Each
//! class gets a lint that makes the regression impossible to land:
//!
//! * [`nan-ordering`](lints::nan_ordering) — `partial_cmp` in ordering
//!   positions; the fix is `total_cmp`.
//! * [`panic-freedom`](lints::panic_freedom) — `unwrap`/`expect`/panicky
//!   macros in non-test library code of the engine-boundary crates.
//! * [`unsafe-audit`](lints::unsafe_audit) — `unsafe` only in allowlisted
//!   modules, every block `// SAFETY:`-justified, allow-attribute counts
//!   pinned exactly.
//! * [`numerical-class`](lints::numerical_class) — kernel functions
//!   declare `Numerical class: bit-identical` or `audited-close`;
//!   bit-identical code must not call audited-close helpers.
//! * [`env-var-registry`](lints::env_registry) — every
//!   `std::env::var("VPEC_*")` read is documented in the CLI usage text.
//!
//! The engine is deliberately hermetic: a hand-rolled [`lexer`] (raw
//! strings, nested block comments, lifetimes vs. char literals) feeds
//! token-level lints, so the pass needs no rustc internals, no syn, no
//! network — `cargo run -p vpec-analyze` works on a bare toolchain and
//! runs in well under a second. False-positive control is structural
//! (string/comment contents never match) plus two escape valves with
//! audit trails: inline [`waiver`]s with mandatory reasons, and a
//! committed [`baseline`] of grandfathered findings so the gate is
//! "no *new* violations" from day one.
//!
//! Run it as `vpec lint` or the `vpec-analyze` binary; `scripts/check.sh`
//! enforces it as a tier-1 gate. See `DESIGN.md` §14 for the taxonomy,
//! waiver policy and baseline semantics.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod diag;
pub mod engine;
pub mod lexer;
pub mod lints;
pub mod structure;
pub mod waiver;

pub use baseline::{Baseline, BaselineError};
pub use diag::{Finding, LintId, Severity, ALL_LINTS};
pub use engine::{Config, Report};
