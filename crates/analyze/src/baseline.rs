//! The committed baseline of grandfathered findings.
//!
//! The gate is "no *new* violations": findings present when a lint was
//! introduced are recorded here and stop counting against the build,
//! while anything not in the file fails it. Entries are keyed by
//! `(lint, file, fingerprint-of-trimmed-source-line)` rather than line
//! numbers, so unrelated edits above a grandfathered site do not orphan
//! its entry. One entry covers every identical occurrence of that line
//! in the file (a deliberate trade: content keys survive refactors,
//! exact duplicates of an already-grandfathered line are rare).
//!
//! Format — one entry per line, tab-separated, sorted bytewise, no
//! duplicates (both validated on load):
//!
//! ```text
//! <lint-name>\t<root-relative-path>\t<fingerprint-hex16>\t<trimmed snippet…>
//! ```
//!
//! The snippet column is advisory context for humans reading diffs; only
//! the first three columns are matched. Regenerate with
//! `vpec-analyze --write-baseline` (or `vpec lint --write-baseline`).

use crate::diag::{fnv1a, Finding, LintId};
use std::collections::BTreeSet;

/// Header comment written at the top of every generated baseline.
const HEADER: &str = "# vpec-analyze baseline — grandfathered findings. The lint gate fails only\n\
                      # on findings NOT listed here. Do not add entries by hand: fix the finding,\n\
                      # waive it inline with a reason, or regenerate via --write-baseline.\n\
                      # Format: lint<TAB>file<TAB>fingerprint<TAB>snippet (sorted, deduped).\n";

/// A parsed baseline: the set of grandfathered `(lint, file, fingerprint)`
/// keys.
#[derive(Debug, Default)]
pub struct Baseline {
    entries: BTreeSet<(LintId, String, u64)>,
}

/// A malformed baseline file. The gate treats this as a hard error — a
/// corrupt baseline silently grandfathers nothing (or everything).
#[derive(Debug, PartialEq, Eq)]
pub struct BaselineError {
    /// 1-based line of the offending entry (0 = file-level problem).
    pub line: usize,
    /// What is wrong.
    pub message: String,
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "baseline line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for BaselineError {}

/// The baseline key of a finding.
pub fn key_of(f: &Finding) -> (LintId, String, u64) {
    (f.lint, f.file.clone(), fnv1a(&f.snippet))
}

impl Baseline {
    /// Parses baseline text, validating entry shape, lint names, sort
    /// order and uniqueness.
    pub fn parse(text: &str) -> Result<Baseline, BaselineError> {
        let mut entries = BTreeSet::new();
        let mut prev: Option<&str> = None;
        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            if raw.trim().is_empty() || raw.starts_with('#') {
                continue;
            }
            let mut cols = raw.splitn(4, '\t');
            let (lint, file, fp) = match (cols.next(), cols.next(), cols.next()) {
                (Some(l), Some(f), Some(h)) if !f.is_empty() => (l, f, h),
                _ => {
                    return Err(BaselineError {
                        line: lineno,
                        message: format!(
                            "expected `lint<TAB>file<TAB>fingerprint[<TAB>snippet]`, got `{raw}`"
                        ),
                    })
                }
            };
            let lint = LintId::parse(lint).ok_or_else(|| BaselineError {
                line: lineno,
                message: format!("unknown lint `{lint}`"),
            })?;
            let fp = u64::from_str_radix(fp, 16).map_err(|_| BaselineError {
                line: lineno,
                message: format!("fingerprint `{fp}` is not 16 hex digits"),
            })?;
            if let Some(p) = prev {
                if p >= raw {
                    return Err(BaselineError {
                        line: lineno,
                        message: if p == raw {
                            format!("duplicate entry `{raw}`")
                        } else {
                            "entries are not sorted (regenerate with --write-baseline)".to_string()
                        },
                    });
                }
            }
            prev = Some(raw);
            if !entries.insert((lint, file.to_string(), fp)) {
                // Same key with a different snippet column.
                return Err(BaselineError {
                    line: lineno,
                    message: format!("duplicate entry for {} {} {fp:016x}", lint, file),
                });
            }
        }
        Ok(Baseline { entries })
    }

    /// Whether `f` is grandfathered.
    pub fn contains(&self, f: &Finding) -> bool {
        self.entries.contains(&key_of(f))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the baseline has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Serializes `findings` as a baseline file: header, then one sorted,
/// deduplicated entry per distinct key. Waiver-hygiene findings are never
/// baselined — they must be fixed at the waiver.
pub fn render(findings: &[Finding]) -> String {
    let mut lines: BTreeSet<String> = BTreeSet::new();
    for f in findings {
        if f.lint == LintId::Waiver {
            continue;
        }
        lines.insert(format!(
            "{}\t{}\t{:016x}\t{}",
            f.lint,
            f.file,
            fnv1a(&f.snippet),
            f.snippet
        ));
    }
    let mut out = String::from(HEADER);
    for l in &lines {
        out.push_str(l);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    fn finding(lint: LintId, file: &str, snippet: &str) -> Finding {
        Finding {
            lint,
            severity: Severity::Deny,
            file: file.into(),
            line: 1,
            col: 1,
            message: "m".into(),
            snippet: snippet.into(),
        }
    }

    #[test]
    fn round_trips() {
        let fs = vec![
            finding(LintId::PanicFreedom, "crates/a/src/lib.rs", "x.unwrap();"),
            finding(LintId::NanOrdering, "crates/b/src/lib.rs", "a.partial_cmp(b)"),
        ];
        let text = render(&fs);
        let b = Baseline::parse(&text).unwrap();
        assert_eq!(b.len(), 2);
        assert!(b.contains(&fs[0]));
        assert!(b.contains(&fs[1]));
        assert!(!b.contains(&finding(LintId::PanicFreedom, "crates/a/src/lib.rs", "y.unwrap();")));
        // Rendering what the baseline matched is idempotent.
        assert_eq!(render(&fs), text);
    }

    #[test]
    fn identical_findings_dedupe_to_one_entry() {
        let f = finding(LintId::PanicFreedom, "f.rs", "x.unwrap();");
        let text = render(&[f.clone(), f.clone()]);
        assert_eq!(text.lines().filter(|l| !l.starts_with('#')).count(), 1);
    }

    #[test]
    fn waiver_findings_are_never_baselined() {
        let text = render(&[finding(LintId::Waiver, "f.rs", "// vpec-allow: x")]);
        assert_eq!(text.lines().filter(|l| !l.starts_with('#')).count(), 0);
    }

    #[test]
    fn rejects_unsorted() {
        let text = "panic-freedom\tb.rs\t0000000000000001\ts\n\
                    panic-freedom\ta.rs\t0000000000000001\ts\n";
        let err = Baseline::parse(text).unwrap_err();
        assert!(err.message.contains("not sorted"), "{}", err.message);
        assert_eq!(err.line, 2);
    }

    #[test]
    fn rejects_duplicates_and_junk() {
        let text = "panic-freedom\ta.rs\t0000000000000001\ts\n\
                    panic-freedom\ta.rs\t0000000000000001\ts\n";
        assert!(Baseline::parse(text).unwrap_err().message.contains("duplicate"));
        assert!(Baseline::parse("just one column\n").is_err());
        assert!(Baseline::parse("no-such-lint\ta.rs\t0000000000000001\ts\n").is_err());
        assert!(Baseline::parse("panic-freedom\ta.rs\tnothex\ts\n").is_err());
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let b = Baseline::parse("# header\n\n# more\n").unwrap();
        assert!(b.is_empty());
    }
}
