//! Inline waivers: `// vpec-allow: <lint> -- <reason>`.
//!
//! A waiver suppresses findings of the named lint on its own line and on
//! the line directly below it (so it can sit as a trailing comment or on
//! its own line above the flagged expression). The reason is mandatory —
//! a waiver without one, or naming an unknown lint, is itself a deny
//! finding, and a waiver that suppressed nothing is a warning: both keep
//! the waiver inventory honest.

use crate::diag::{Finding, LintId, Severity};
use crate::lexer::{Tok, TokKind};

/// The comment marker that opens a waiver.
pub const MARKER: &str = "vpec-allow:";

/// One parsed waiver.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// The waived lint.
    pub lint: LintId,
    /// 1-based line the waiver comment starts on.
    pub line: u32,
    /// The justification after `--`.
    pub reason: String,
}

/// Scans a file's comment tokens for waivers. Returns the well-formed
/// waivers plus deny findings for malformed ones.
pub fn collect(src: &str, toks: &[Tok], file: &str) -> (Vec<Waiver>, Vec<Finding>) {
    let mut waivers = Vec::new();
    let mut findings = Vec::new();
    for t in toks {
        if t.kind != TokKind::LineComment && t.kind != TokKind::BlockComment {
            continue;
        }
        // Only comments that *start* with the marker are waivers; prose
        // that mentions `vpec-allow:` mid-sentence (docs, examples) is not.
        let stripped = t.text(src).trim_start_matches(['/', '*', '!']).trim_start();
        if !stripped.starts_with(MARKER) {
            continue;
        }
        let spec = stripped[MARKER.len()..].trim_end_matches("*/").trim();
        let bad = |message: String| Finding {
            lint: LintId::Waiver,
            severity: Severity::Deny,
            file: file.to_string(),
            line: t.line,
            col: t.col,
            message,
            snippet: snippet_at(src, t.line),
        };
        let (name, reason) = match spec.split_once("--") {
            Some((n, r)) => (n.trim(), r.trim()),
            None => (spec, ""),
        };
        let Some(lint) = LintId::parse(name) else {
            findings.push(bad(format!(
                "waiver names unknown lint `{name}` (known: nan-ordering, panic-freedom, \
                 unsafe-audit, numerical-class, env-var-registry)"
            )));
            continue;
        };
        if reason.is_empty() {
            findings.push(bad(format!(
                "waiver for `{lint}` is missing its mandatory reason \
                 (write `// vpec-allow: {lint} -- <why this is sound>`)"
            )));
            continue;
        }
        waivers.push(Waiver {
            lint,
            line: t.line,
            reason: reason.to_string(),
        });
    }
    (waivers, findings)
}

/// Applies `waivers` to `findings`: suppressed findings are removed and
/// counted, and each waiver that matched nothing becomes a warn finding.
/// Returns (surviving findings, waived count).
pub fn apply(
    findings: Vec<Finding>,
    waivers: &[Waiver],
    src: &str,
    file: &str,
) -> (Vec<Finding>, usize) {
    let mut used = vec![false; waivers.len()];
    let mut kept = Vec::with_capacity(findings.len());
    let mut waived = 0usize;
    for f in findings {
        let hit = waivers.iter().position(|w| {
            w.lint == f.lint && (f.line == w.line || f.line == w.line + 1)
        });
        match hit {
            // The waiver meta-lint itself can never be waived.
            Some(i) if f.lint != LintId::Waiver => {
                used[i] = true;
                waived += 1;
            }
            _ => kept.push(f),
        }
    }
    for (w, _) in waivers.iter().zip(&used).filter(|(_, &u)| !u) {
        kept.push(Finding {
            lint: LintId::Waiver,
            severity: Severity::Warn,
            file: file.to_string(),
            line: w.line,
            col: 1,
            message: format!(
                "waiver for `{}` suppressed nothing — remove it or move it next to the \
                 finding it covers",
                w.lint
            ),
            snippet: snippet_at(src, w.line),
        });
    }
    (kept, waived)
}

/// The trimmed text of 1-based `line` in `src`.
pub fn snippet_at(src: &str, line: u32) -> String {
    src.lines()
        .nth(line.saturating_sub(1) as usize)
        .unwrap_or("")
        .trim()
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn finding(lint: LintId, line: u32) -> Finding {
        Finding {
            lint,
            severity: Severity::Deny,
            file: "f.rs".into(),
            line,
            col: 1,
            message: "m".into(),
            snippet: "s".into(),
        }
    }

    #[test]
    fn parses_well_formed_waiver() {
        let src = "// vpec-allow: nan-ordering -- NaN maps to a violation on purpose\nlet x = 1;\n";
        let (ws, bad) = collect(src, &lex(src), "f.rs");
        assert!(bad.is_empty());
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].lint, LintId::NanOrdering);
        assert_eq!(ws[0].line, 1);
        assert!(ws[0].reason.contains("on purpose"));
    }

    #[test]
    fn missing_reason_is_a_deny_finding() {
        let src = "// vpec-allow: nan-ordering\n";
        let (ws, bad) = collect(src, &lex(src), "f.rs");
        assert!(ws.is_empty());
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].lint, LintId::Waiver);
        assert_eq!(bad[0].severity, Severity::Deny);
        assert!(bad[0].message.contains("mandatory reason"));
        // `-- ` with empty reason is equally malformed.
        let src = "// vpec-allow: panic-freedom -- \n";
        let (ws, bad) = collect(src, &lex(src), "f.rs");
        assert!(ws.is_empty());
        assert_eq!(bad.len(), 1);
    }

    #[test]
    fn unknown_lint_is_a_deny_finding() {
        let src = "// vpec-allow: no-such-lint -- because\n";
        let (ws, bad) = collect(src, &lex(src), "f.rs");
        assert!(ws.is_empty());
        assert!(bad[0].message.contains("unknown lint"));
        // The waiver meta-lint cannot be named either.
        let src = "// vpec-allow: waiver -- nope\n";
        let (_, bad) = collect(src, &lex(src), "f.rs");
        assert_eq!(bad.len(), 1);
    }

    #[test]
    fn waiver_covers_same_and_next_line_only() {
        let src = "// vpec-allow: nan-ordering -- reason\nx\ny\n";
        let (ws, _) = collect(src, &lex(src), "f.rs");
        let fs = vec![
            finding(LintId::NanOrdering, 1),
            finding(LintId::NanOrdering, 2),
            finding(LintId::NanOrdering, 3),
            finding(LintId::PanicFreedom, 2),
        ];
        let (kept, waived) = apply(fs, &ws, src, "f.rs");
        assert_eq!(waived, 2);
        // Line 3 (too far) and the wrong-lint finding survive.
        assert!(kept.iter().any(|f| f.lint == LintId::NanOrdering && f.line == 3));
        assert!(kept.iter().any(|f| f.lint == LintId::PanicFreedom));
    }

    #[test]
    fn unused_waiver_becomes_warning() {
        let src = "let a = 1; // vpec-allow: panic-freedom -- stale\n";
        let (ws, _) = collect(src, &lex(src), "f.rs");
        let (kept, waived) = apply(Vec::new(), &ws, src, "f.rs");
        assert_eq!(waived, 0);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].lint, LintId::Waiver);
        assert_eq!(kept[0].severity, Severity::Warn);
        assert!(kept[0].message.contains("suppressed nothing"));
    }

    #[test]
    fn waivers_in_strings_are_ignored() {
        let src = "let s = \"// vpec-allow: nan-ordering -- fake\";\n";
        let (ws, bad) = collect(src, &lex(src), "f.rs");
        assert!(ws.is_empty());
        assert!(bad.is_empty());
    }
}
