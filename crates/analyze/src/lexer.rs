//! A small hand-rolled Rust lexer.
//!
//! Produces a flat token stream with byte spans and line/column positions
//! — just enough structure for lexical lints to tell *code* apart from
//! *text*: string literals (including raw strings with any number of `#`
//! guards and byte strings), nested block comments, line comments, char
//! literals vs. lifetimes, and numeric literals. It deliberately does not
//! parse: the lints that need structure (brace-matched bodies,
//! `#[cfg(test)]` regions) reconstruct it from the token stream, where
//! braces inside strings and comments can no longer confuse them.

/// Token classification. Comments are kept as tokens — waivers,
/// `// SAFETY:` audits and numerical-class markers all live in them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers `r#ident`).
    Ident,
    /// A lifetime such as `'a` or `'static` (not a char literal).
    Lifetime,
    /// A char or byte-char literal: `'x'`, `'\n'`, `b'\0'`.
    CharLit,
    /// A string literal of any flavor: `"…"`, `r#"…"#`, `b"…"`, `br"…"`.
    StrLit,
    /// A numeric literal.
    Number,
    /// `// …` to end of line (includes `///` and `//!` doc comments).
    LineComment,
    /// `/* … */`, nesting tracked (includes `/** … */` doc comments).
    BlockComment,
    /// Any other single character of punctuation.
    Punct,
}

/// One token: kind plus position. Text is recovered from the source via
/// [`Tok::text`] so the stream stays compact.
#[derive(Debug, Clone, Copy)]
pub struct Tok {
    /// Classification.
    pub kind: TokKind,
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line of the first character.
    pub line: u32,
    /// 1-based column (in characters) of the first character.
    pub col: u32,
    /// 1-based line of the last character (≠ `line` only for block
    /// comments and multi-line strings).
    pub end_line: u32,
}

impl Tok {
    /// The token's source text.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

/// Lexes `src` into a token stream. Never fails: unterminated constructs
/// extend to end of input, and unrecognized bytes become `Punct` tokens —
/// a linter must degrade gracefully on code that does not compile yet.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    out: Vec<Tok>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            out: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> u8 {
        *self.bytes.get(self.pos + ahead).unwrap_or(&0)
    }

    /// Advances one byte, tracking line/column. Multi-byte UTF-8
    /// continuation bytes do not advance the column.
    fn bump(&mut self) {
        let b = self.bytes[self.pos];
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else if (b & 0xC0) != 0x80 {
            self.col += 1;
        }
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            if self.pos < self.bytes.len() {
                self.bump();
            }
        }
    }

    fn emit(&mut self, kind: TokKind, start: usize, line: u32, col: u32) {
        self.out.push(Tok {
            kind,
            start,
            end: self.pos,
            line,
            col,
            end_line: self.line,
        });
    }

    fn run(mut self) -> Vec<Tok> {
        while self.pos < self.bytes.len() {
            let (start, line, col) = (self.pos, self.line, self.col);
            let b = self.peek(0);
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => self.bump(),
                b'/' if self.peek(1) == b'/' => {
                    while self.pos < self.bytes.len() && self.peek(0) != b'\n' {
                        self.bump();
                    }
                    self.emit(TokKind::LineComment, start, line, col);
                }
                b'/' if self.peek(1) == b'*' => {
                    self.bump_n(2);
                    let mut depth = 1usize;
                    while self.pos < self.bytes.len() && depth > 0 {
                        if self.peek(0) == b'/' && self.peek(1) == b'*' {
                            depth += 1;
                            self.bump_n(2);
                        } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                            depth -= 1;
                            self.bump_n(2);
                        } else {
                            self.bump();
                        }
                    }
                    self.emit(TokKind::BlockComment, start, line, col);
                }
                b'"' => {
                    self.quoted_string();
                    self.emit(TokKind::StrLit, start, line, col);
                }
                b'\'' => self.char_or_lifetime(start, line, col),
                b'r' | b'b' if self.raw_or_byte_literal(start, line, col) => {}
                _ if is_ident_start(b) => {
                    while self.pos < self.bytes.len() && is_ident_continue(self.peek(0)) {
                        self.bump();
                    }
                    self.emit(TokKind::Ident, start, line, col);
                }
                _ if b.is_ascii_digit() => {
                    self.number();
                    self.emit(TokKind::Number, start, line, col);
                }
                _ => {
                    self.bump();
                    self.emit(TokKind::Punct, start, line, col);
                }
            }
        }
        self.out
    }

    /// Consumes a `"…"` string starting at the opening quote.
    fn quoted_string(&mut self) {
        self.bump(); // opening quote
        while self.pos < self.bytes.len() {
            match self.peek(0) {
                b'\\' => self.bump_n(2),
                b'"' => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// Consumes `r"…"` / `r#"…"#` (any guard count) starting at `r`.
    fn raw_string(&mut self) {
        self.bump(); // 'r'
        let mut guards = 0usize;
        while self.peek(0) == b'#' {
            guards += 1;
            self.bump();
        }
        if self.peek(0) != b'"' {
            return; // raw identifier handled by caller; should not happen
        }
        self.bump();
        loop {
            if self.pos >= self.bytes.len() {
                return;
            }
            if self.peek(0) == b'"' {
                let mut ok = true;
                for g in 0..guards {
                    if self.peek(1 + g) != b'#' {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    self.bump_n(1 + guards);
                    return;
                }
            }
            self.bump();
        }
    }

    /// Handles the `r`/`b` prefixes: raw strings (`r"`, `r#"`), raw
    /// identifiers (`r#ident`), byte strings (`b"`, `br"`, `br#"`) and
    /// byte chars (`b'x'`). Returns `false` when the prefix turns out to
    /// start a plain identifier, leaving the position untouched.
    fn raw_or_byte_literal(&mut self, start: usize, line: u32, col: u32) -> bool {
        let b0 = self.peek(0);
        if b0 == b'r' {
            if self.peek(1) == b'"' {
                self.raw_string();
                self.emit(TokKind::StrLit, start, line, col);
                return true;
            }
            if self.peek(1) == b'#' {
                // `r#"` (raw string) vs `r#ident` (raw identifier).
                let mut i = 1;
                while self.peek(i) == b'#' {
                    i += 1;
                }
                if self.peek(i) == b'"' {
                    self.raw_string();
                    self.emit(TokKind::StrLit, start, line, col);
                    return true;
                }
                if is_ident_start(self.peek(2)) {
                    self.bump_n(2);
                    while self.pos < self.bytes.len() && is_ident_continue(self.peek(0)) {
                        self.bump();
                    }
                    self.emit(TokKind::Ident, start, line, col);
                    return true;
                }
            }
            return false;
        }
        // b0 == b'b'
        match self.peek(1) {
            b'"' => {
                self.bump(); // 'b'
                self.quoted_string();
                self.emit(TokKind::StrLit, start, line, col);
                true
            }
            b'\'' => {
                self.bump(); // 'b'
                self.char_literal();
                self.emit(TokKind::CharLit, start, line, col);
                true
            }
            b'r' if self.peek(2) == b'"' || self.peek(2) == b'#' => {
                self.bump(); // 'b'
                self.raw_string();
                self.emit(TokKind::StrLit, start, line, col);
                true
            }
            _ => false,
        }
    }

    /// Consumes a char literal starting at the opening `'` — the caller
    /// has already decided it is not a lifetime.
    fn char_literal(&mut self) {
        self.bump(); // opening '
        if self.peek(0) == b'\\' {
            self.bump_n(2);
            // Escapes like \u{1F600} contain more; consume to closing '.
            while self.pos < self.bytes.len() && self.peek(0) != b'\'' {
                self.bump();
            }
        } else if self.pos < self.bytes.len() {
            self.bump(); // the character (first byte bumps cover UTF-8 via loop below)
            while self.pos < self.bytes.len()
                && (self.bytes[self.pos] & 0xC0) == 0x80
            {
                self.bump();
            }
        }
        if self.peek(0) == b'\'' {
            self.bump();
        }
    }

    /// Disambiguates `'a'` (char) from `'a` (lifetime) at a `'`.
    fn char_or_lifetime(&mut self, start: usize, line: u32, col: u32) {
        let n1 = self.peek(1);
        let is_lifetime = n1 != b'\\'
            && is_ident_start(n1)
            && {
                // `'a'` is a char; `'a,` / `'a>` / `'static` are lifetimes.
                let mut i = 2;
                while is_ident_continue(self.peek(i)) {
                    i += 1;
                }
                self.peek(i) != b'\''
            };
        if is_lifetime {
            self.bump(); // '
            while self.pos < self.bytes.len() && is_ident_continue(self.peek(0)) {
                self.bump();
            }
            self.emit(TokKind::Lifetime, start, line, col);
        } else {
            self.char_literal();
            self.emit(TokKind::CharLit, start, line, col);
        }
    }

    /// Consumes a numeric literal. Precision is not needed — only that
    /// `0..n` does not swallow the range operator and `1.0e-3` stays one
    /// token.
    fn number(&mut self) {
        while self.pos < self.bytes.len() {
            let b = self.peek(0);
            if b.is_ascii_alphanumeric() || b == b'_' {
                if (b == b'e' || b == b'E')
                    && (self.peek(1) == b'+' || self.peek(1) == b'-')
                    && self.peek(2).is_ascii_digit()
                {
                    self.bump_n(2);
                    continue;
                }
                self.bump();
            } else if b == b'.' && self.peek(1).is_ascii_digit() {
                self.bump();
            } else {
                break;
            }
        }
    }
}

/// Strips the quotes (and any raw-string guards / byte prefixes) off a
/// string-literal token's text, returning the content.
pub fn str_content(text: &str) -> &str {
    let mut s = text;
    s = s.strip_prefix('b').unwrap_or(s);
    s = s.strip_prefix('r').unwrap_or(s);
    let guards = s.bytes().take_while(|&b| b == b'#').count();
    s = &s[guards..];
    s = s.strip_prefix('"').unwrap_or(s);
    let tail_guard = s.len().saturating_sub(guards);
    if s.get(tail_guard..).is_some_and(|t| t.bytes().all(|b| b == b'#')) {
        s = &s[..tail_guard];
    }
    s.strip_suffix('"').unwrap_or(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn idents_numbers_puncts() {
        let ks = kinds("let x = 42 + y_2;");
        let idents: Vec<_> = ks
            .iter()
            .filter(|(k, _)| *k == TokKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, ["let", "x", "y_2"]);
        assert!(ks.contains(&(TokKind::Number, "42".to_string())));
    }

    #[test]
    fn strings_hide_their_content() {
        let src = r#"let s = "partial_cmp inside a string"; call();"#;
        let ks = kinds(src);
        assert!(ks
            .iter()
            .any(|(k, t)| *k == TokKind::StrLit && t.contains("partial_cmp")));
        assert!(!ks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "partial_cmp"));
    }

    #[test]
    fn raw_strings_with_guards() {
        let src = r##"let s = r#"unwrap() "quoted" inside"#; next"##;
        let ks = kinds(src);
        let lit = ks.iter().find(|(k, _)| *k == TokKind::StrLit).unwrap();
        assert!(lit.1.contains("quoted"));
        assert_eq!(ks.last().unwrap().1, "next");
        assert_eq!(str_content(&lit.1), r#"unwrap() "quoted" inside"#);
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let ks = kinds(r#"let a = b"bytes"; let c = b'\n';"#);
        assert!(ks.iter().any(|(k, t)| *k == TokKind::StrLit && t.starts_with("b\"")));
        assert!(ks.iter().any(|(k, t)| *k == TokKind::CharLit && t.starts_with("b'")));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner unwrap() */ still comment */ code";
        let ks = kinds(src);
        assert_eq!(ks.len(), 2);
        assert_eq!(ks[0].0, TokKind::BlockComment);
        assert!(ks[0].1.contains("inner unwrap()"));
        assert_eq!(ks[1], (TokKind::Ident, "code".to_string()));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let ks = kinds("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert_eq!(
            ks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count(),
            2
        );
        assert!(ks.iter().any(|(k, t)| *k == TokKind::CharLit && t == "'x'"));
        let ks = kinds(r"let c = '\''; let s: &'static str = x;");
        assert!(ks.iter().any(|(k, t)| *k == TokKind::CharLit && t == r"'\''"));
        assert!(ks
            .iter()
            .any(|(k, t)| *k == TokKind::Lifetime && t == "'static"));
    }

    #[test]
    fn line_and_column_positions() {
        let src = "a\n  bb\n";
        let ts = lex(src);
        assert_eq!((ts[0].line, ts[0].col), (1, 1));
        assert_eq!((ts[1].line, ts[1].col), (2, 3));
    }

    #[test]
    fn ranges_do_not_merge_into_floats() {
        let ks = kinds("for i in 0..n { x[i] = 1.5e-3; }");
        assert!(ks.contains(&(TokKind::Number, "0".to_string())));
        assert!(ks.contains(&(TokKind::Number, "1.5e-3".to_string())));
    }

    #[test]
    fn multiline_block_comment_tracks_end_line() {
        let src = "/* one\ntwo\nthree */ x";
        let ts = lex(src);
        assert_eq!(ts[0].line, 1);
        assert_eq!(ts[0].end_line, 3);
        assert_eq!(ts[1].line, 3);
    }

    #[test]
    fn unterminated_constructs_do_not_panic() {
        lex("let s = \"unterminated");
        lex("/* unterminated");
        lex("let c = '");
        lex("r#\"unterminated");
    }
}
