//! Diagnostics: lint identities, severities and findings.

use std::fmt;

/// Identity of a lint (or of the waiver meta-checks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintId {
    /// `partial_cmp`/`sort_by`/`max_by`/`min_by` on float expressions
    /// outside a `total_cmp` form — the thrice-fixed NaN-ordering class.
    NanOrdering,
    /// `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!`
    /// in non-test library code of the engine-boundary crates.
    PanicFreedom,
    /// `unsafe` outside the allowlist, missing `// SAFETY:` comments, or
    /// a drifted `#[allow(unsafe_code)]` count.
    UnsafeAudit,
    /// Kernel functions must declare `Numerical class: bit-identical`
    /// or `audited-close`, and bit-identical paths must not call
    /// audited-close helpers.
    NumericalClass,
    /// Every `std::env::var("VPEC_*")` read must name a variable
    /// documented in the usage registry.
    EnvVarRegistry,
    /// Waiver hygiene: malformed `// vpec-allow:` comments (deny) and
    /// waivers that matched nothing (warn).
    Waiver,
}

/// Every real lint, in reporting order. `Waiver` is excluded: it cannot
/// be waived or baselined, only fixed.
pub const ALL_LINTS: [LintId; 5] = [
    LintId::NanOrdering,
    LintId::PanicFreedom,
    LintId::UnsafeAudit,
    LintId::NumericalClass,
    LintId::EnvVarRegistry,
];

impl LintId {
    /// The kebab-case name used in waivers, baselines and reports.
    pub fn name(self) -> &'static str {
        match self {
            LintId::NanOrdering => "nan-ordering",
            LintId::PanicFreedom => "panic-freedom",
            LintId::UnsafeAudit => "unsafe-audit",
            LintId::NumericalClass => "numerical-class",
            LintId::EnvVarRegistry => "env-var-registry",
            LintId::Waiver => "waiver",
        }
    }

    /// Parses a lint name as written in waivers and baseline files.
    /// `waiver` is deliberately not parseable: the meta-lint cannot be
    /// waived away.
    pub fn parse(name: &str) -> Option<LintId> {
        ALL_LINTS.into_iter().find(|l| l.name() == name)
    }
}

impl fmt::Display for LintId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Severity of a finding. `Deny` findings fail the gate; `Warn` findings
/// are reported (and fail it only under strict mode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory: reported, gate-failing only under strict mode.
    Warn,
    /// Gate-failing.
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        })
    }
}

/// One lint finding at a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which lint fired.
    pub lint: LintId,
    /// Gate severity.
    pub severity: Severity,
    /// Root-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description with the fix direction.
    pub message: String,
    /// The trimmed source line — displayed, and fingerprinted for the
    /// baseline so entries survive unrelated line-number drift.
    pub snippet: String,
}

impl Finding {
    /// Renders as `file:line:col: severity[lint]: message`.
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: {}[{}]: {}\n    | {}",
            self.file, self.line, self.col, self.severity, self.lint, self.message, self.snippet
        )
    }
}

/// 64-bit FNV-1a — the baseline fingerprint hash. Stable across runs,
/// platforms and rustc versions (unlike `DefaultHasher`).
pub fn fnv1a(data: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in data.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for lint in ALL_LINTS {
            assert_eq!(LintId::parse(lint.name()), Some(lint));
        }
        assert_eq!(LintId::parse("waiver"), None);
        assert_eq!(LintId::parse("nonsense"), None);
    }

    #[test]
    fn fnv_is_stable() {
        // Known FNV-1a vectors: regressions here would silently orphan
        // every committed baseline entry.
        assert_eq!(fnv1a(""), 0xcbf29ce484222325);
        assert_eq!(fnv1a("a"), 0xaf63dc4c8601ec8c);
    }

    #[test]
    fn render_contains_position_and_lint() {
        let f = Finding {
            lint: LintId::NanOrdering,
            severity: Severity::Deny,
            file: "crates/x/src/lib.rs".into(),
            line: 3,
            col: 7,
            message: "m".into(),
            snippet: "s".into(),
        };
        assert!(f.render().starts_with("crates/x/src/lib.rs:3:7: deny[nan-ordering]"));
    }
}
