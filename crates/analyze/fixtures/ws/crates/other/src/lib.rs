//! Outside the panic-freedom crates: unwrap is fine, unsafe is not.

pub fn free_unwrap(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn sneaky(p: *const u8) -> u8 {
    unsafe { *p }
}

pub fn secret() -> Option<String> {
    std::env::var("VPEC_FIX_SECRET").ok()
}
