//! Fixture usage text. Documented variables: VPEC_FIX_THREADS.

pub fn threads() -> Option<String> {
    std::env::var("VPEC_FIX_THREADS").ok()
}

pub fn documented() -> Option<String> {
    std::env::var("VPEC_FIX_THREADS").ok()
}
