//! Waiver-hygiene fixtures: one malformed, one unused.

// vpec-allow: panic-freedom
pub fn missing_reason() {}

// vpec-allow: nan-ordering -- stale: the sort moved elsewhere
pub fn unused_waiver() {}
