//! panic-freedom fixtures.

pub fn bad(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn worse() -> u32 {
    panic!("boom")
}

pub fn fine(x: Option<u32>) -> u32 {
    x.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_are_fine_in_tests() {
        assert_eq!(super::fine(None), 0);
        let _ = Some(3).unwrap();
    }
}
