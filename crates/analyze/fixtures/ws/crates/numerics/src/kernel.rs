//! numerical-class fixtures: kernel module, markers mandatory.

/// Sums with four accumulators.
///
/// Numerical class: audited-close.
pub fn dotx(a: &[f64]) -> f64 {
    a.iter().sum()
}

/// Numerical class: bit-identical.
pub fn bump(a: &mut [f64]) {
    for x in a.iter_mut() {
        *x += 1.0;
    }
}

/// Numerical class: bit-identical.
pub fn caller(a: &mut [f64]) -> f64 {
    bump(a);
    dotx(a)
}

pub fn unmarked() {}
