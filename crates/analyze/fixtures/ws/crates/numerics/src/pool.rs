//! unsafe-audit fixtures: allowlisted module with a pinned count of 1.

#[allow(unsafe_code)]
pub mod inner {
    /// Reads through a raw pointer.
    ///
    /// # Safety
    ///
    /// Caller guarantees `p` is valid for reads.
    pub unsafe fn read(p: *const u8) -> u8 {
        // SAFETY: contract delegated to the caller above.
        unsafe { *p }
    }

    pub fn bad(p: *const u8) -> u8 {
        //
        //
        //
        unsafe { *p }
    }
}
