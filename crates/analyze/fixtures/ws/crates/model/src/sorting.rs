//! nan-ordering fixtures: two positives, traps that must stay silent.

pub fn order(v: &mut [f64]) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

/// `total_cmp` is the sanctioned comparator.
pub fn order_ok(v: &mut [f64]) {
    v.sort_by(|a, b| a.total_cmp(b));
}

// Mentioning partial_cmp in a comment is not a finding.
pub fn trap() -> &'static str {
    "v.sort_by(|a, b| a.partial_cmp(b).unwrap())"
}

pub fn max_of(v: &[f64]) -> Option<f64> {
    v.iter().copied().max_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
}

pub fn waived(x: f64, y: f64) -> bool {
    // vpec-allow: nan-ordering -- NaN must compare not-Greater and count as a violation
    x.partial_cmp(&y) != Some(std::cmp::Ordering::Greater)
}
