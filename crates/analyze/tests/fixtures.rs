//! Expected-findings snapshots over the fixture mini-workspace.
//!
//! Every seeded positive must be detected at its exact position, every
//! trap (strings, comments, test regions, excluded trees) must stay
//! silent, and the waiver/baseline machinery must round-trip.

use std::path::PathBuf;
use vpec_analyze::{baseline, engine, Baseline, Config, LintId, Severity};

fn fixture_config() -> Config {
    let owned = |xs: &[&str]| xs.iter().map(|s| s.to_string()).collect();
    Config {
        root: PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures/ws"),
        panic_crates: owned(&["core"]),
        unsafe_allowlist: vec![("crates/numerics/src/pool.rs".to_string(), 1)],
        kernel_modules: owned(&["crates/numerics/src/kernel.rs"]),
        registry_files: owned(&["crates/cli/src/lib.rs"]),
        exclude_prefixes: owned(&["skipped"]),
    }
}

#[test]
fn fixture_findings_match_snapshot_exactly() {
    let report = engine::run(&fixture_config(), &Baseline::default()).unwrap();
    let got: Vec<(String, String, u32)> = report
        .findings
        .iter()
        .map(|f| (f.lint.name().to_string(), f.file.clone(), f.line))
        .collect();
    // Sorted by (file, line): the complete expected corpus — any extra
    // entry is a false positive, any missing entry a false negative.
    let expected: Vec<(&str, &str, u32)> = vec![
        ("panic-freedom", "crates/core/src/panics.rs", 4),
        ("panic-freedom", "crates/core/src/panics.rs", 8),
        ("waiver", "crates/core/src/waivers.rs", 3),
        ("waiver", "crates/core/src/waivers.rs", 6),
        ("nan-ordering", "crates/model/src/sorting.rs", 4),
        ("nan-ordering", "crates/model/src/sorting.rs", 18),
        ("numerical-class", "crates/numerics/src/kernel.rs", 20),
        ("numerical-class", "crates/numerics/src/kernel.rs", 23),
        ("unsafe-audit", "crates/numerics/src/pool.rs", 19),
        ("unsafe-audit", "crates/other/src/lib.rs", 8),
        ("env-var-registry", "crates/other/src/lib.rs", 12),
    ];
    let expected: Vec<(String, String, u32)> = expected
        .into_iter()
        .map(|(l, f, n)| (l.to_string(), f.to_string(), n))
        .collect();
    assert_eq!(got, expected, "full findings:\n{:#?}", report.findings);
    // The deliberate NaN-propagation check was waived, nothing else.
    assert_eq!(report.waived, 1);
    assert_eq!(report.baselined, 0);
}

#[test]
fn waiver_hygiene_severities() {
    let report = engine::run(&fixture_config(), &Baseline::default()).unwrap();
    let waiver_findings: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.lint == LintId::Waiver)
        .collect();
    assert_eq!(waiver_findings.len(), 2);
    // Malformed (missing reason) is a deny; unused is a warning.
    assert_eq!(waiver_findings[0].line, 3);
    assert_eq!(waiver_findings[0].severity, Severity::Deny);
    assert!(waiver_findings[0].message.contains("mandatory reason"));
    assert_eq!(waiver_findings[1].line, 6);
    assert_eq!(waiver_findings[1].severity, Severity::Warn);
    assert!(waiver_findings[1].message.contains("suppressed nothing"));
}

#[test]
fn baseline_round_trip_grandfathers_everything_but_waiver_hygiene() {
    let cfg = fixture_config();
    let first = engine::run(&cfg, &Baseline::default()).unwrap();
    let text = baseline::render(&first.post_waiver);
    let bl = Baseline::parse(&text).unwrap();

    let second = engine::run(&cfg, &bl).unwrap();
    // Everything grandfathered except waiver hygiene, which can only be
    // fixed at the waiver, never baselined away.
    assert!(
        second.findings.iter().all(|f| f.lint == LintId::Waiver),
        "non-waiver findings survived the baseline:\n{:#?}",
        second.findings
    );
    assert_eq!(second.baselined, first.findings.len() - 2);
    // Regeneration is idempotent.
    assert_eq!(baseline::render(&second.post_waiver), text);
}

#[test]
fn strict_mode_promotes_warnings() {
    let cfg = fixture_config();
    let first = engine::run(&cfg, &Baseline::default()).unwrap();
    let bl = Baseline::parse(&baseline::render(&first.post_waiver)).unwrap();
    // Remove the malformed-waiver deny by pretending it was fixed: run on
    // the same tree, the deny waiver finding still fails the default
    // gate, and the warn-only residue fails only under strict.
    let second = engine::run(&cfg, &bl).unwrap();
    assert!(second.gate_fails(false), "deny waiver finding must gate");
    let only_warns: Vec<_> = second
        .findings
        .iter()
        .filter(|f| f.severity == Severity::Warn)
        .cloned()
        .collect();
    let warn_report = engine::Report {
        findings: only_warns,
        post_waiver: Vec::new(),
        baselined: 0,
        waived: 0,
        files_scanned: 0,
        lines_scanned: 0,
    };
    assert!(!warn_report.gate_fails(false));
    assert!(warn_report.gate_fails(true));
}

#[test]
fn excluded_trees_are_not_scanned() {
    let report = engine::run(&fixture_config(), &Baseline::default()).unwrap();
    assert!(
        report.findings.iter().all(|f| !f.file.starts_with("skipped")),
        "excluded tree leaked into findings"
    );
    // 7 fixture files scanned: the excluded one does not count.
    assert_eq!(report.files_scanned, 7);
}
