//! Meta-test: the workspace itself is lint-clean against the committed
//! baseline. This is the same gate `scripts/check.sh` runs via the
//! `vpec-analyze` binary, enforced from `cargo test` too so a finding
//! can never hide behind a skipped script.

use std::path::PathBuf;
use vpec_analyze::{engine, Baseline, Config};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

#[test]
fn workspace_is_clean_against_committed_baseline() {
    let root = workspace_root();
    let baseline_text = std::fs::read_to_string(root.join("lint.baseline"))
        .expect("lint.baseline is committed at the workspace root");
    let baseline = Baseline::parse(&baseline_text).expect("committed baseline is well-formed");
    let report = engine::run(&Config::for_workspace(root), &baseline).unwrap();
    assert!(
        !report.gate_fails(false),
        "workspace has new lint findings:\n{}",
        report
            .findings
            .iter()
            .map(|f| f.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Sanity: the run actually scanned the tree.
    assert!(report.files_scanned > 50, "only {} files", report.files_scanned);
    assert!(report.lines_scanned > 10_000);
}

#[test]
fn committed_baseline_has_no_orphan_entries() {
    // Entries whose finding no longer exists should be pruned so the
    // baseline only ever shrinks toward zero. An orphan is not a gate
    // failure (the gate is one-sided by design) but this test keeps the
    // inventory honest.
    let root = workspace_root();
    let baseline_text = std::fs::read_to_string(root.join("lint.baseline")).unwrap();
    let baseline = Baseline::parse(&baseline_text).unwrap();
    let report = engine::run(&Config::for_workspace(root), &baseline).unwrap();
    assert_eq!(
        report.baselined + report.findings.len(),
        report.post_waiver.len(),
        "baselined + new must account for every post-waiver finding"
    );
    let regenerated = vpec_analyze::baseline::render(&report.post_waiver);
    assert_eq!(
        regenerated.lines().filter(|l| !l.starts_with('#') && !l.is_empty()).count(),
        baseline.len(),
        "stale baseline: regenerate with `vpec lint --write-baseline`"
    );
}
