//! Offline ledger aggregation for `vpec stats`: fleet-level service
//! analytics from one or more run ledgers.
//!
//! Aggregation works on the raw per-request records, so percentiles here
//! are **exact** nearest-rank values over the recorded latencies (unlike
//! the live registry histograms, which quantize into √2 buckets). The
//! report covers latency percentiles overall, per model-kind and per
//! outcome; cache hit ratios per level; solver-strategy, preconditioner
//! and degradation breakdowns; an error taxonomy; and request throughput
//! over fixed time buckets. [`FailCondition`] turns the report into a CI
//! gate: `--fail-if p99>250ms` / `--fail-if degraded>5%`.

use crate::ledger::LedgerRecord;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use vpec_trace::json;

/// Exact nearest-rank percentile of an **ascending-sorted** slice:
/// the rank-⌈q·n⌉ element. `None` when empty.
#[must_use]
pub fn percentile(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

/// Latency distribution of one request population.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LatencySummary {
    /// Number of requests.
    pub count: usize,
    /// Exact nearest-rank p50, ms.
    pub p50: Option<f64>,
    /// Exact nearest-rank p90, ms.
    pub p90: Option<f64>,
    /// Exact nearest-rank p99, ms.
    pub p99: Option<f64>,
    /// Largest latency, ms.
    pub max: Option<f64>,
    /// Mean latency, ms.
    pub mean: Option<f64>,
}

impl LatencySummary {
    fn from_sorted(sorted: &[f64]) -> LatencySummary {
        let sum: f64 = sorted.iter().sum();
        LatencySummary {
            count: sorted.len(),
            p50: percentile(sorted, 0.50),
            p90: percentile(sorted, 0.90),
            p99: percentile(sorted, 0.99),
            max: sorted.last().copied(),
            mean: if sorted.is_empty() {
                None
            } else {
                Some(sum / sorted.len() as f64)
            },
        }
    }
}

/// Hit/miss tally of one cache level. Misses are requests that were
/// answered OK without that level hitting — failed requests may never
/// have reached the cache, so they count toward neither side.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheLevelStats {
    /// Requests the level answered.
    pub hits: usize,
    /// OK requests the level did not answer.
    pub misses: usize,
}

impl CacheLevelStats {
    /// `hits / (hits + misses)`; `None` when the level saw no traffic.
    #[must_use]
    pub fn hit_ratio(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        if total == 0 {
            None
        } else {
            Some(self.hits as f64 / total as f64)
        }
    }
}

/// Aggregated view of one or more run ledgers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LedgerStats {
    /// Request records aggregated (snapshot records are not counted).
    pub total: usize,
    /// Requests answered OK (degraded included).
    pub ok: usize,
    /// Requests answered failed.
    pub failed: usize,
    /// Requests served degraded.
    pub degraded: usize,
    /// Total retries consumed across all requests.
    pub retries: usize,
    /// Snapshot records seen (and skipped) while aggregating.
    pub snapshots: usize,
    /// All request latencies, ascending, ms.
    pub latencies_ms: Vec<f64>,
    /// Latencies per requested model kind, ascending, ms.
    pub per_kind: BTreeMap<String, Vec<f64>>,
    /// Latencies per outcome (`"ok"` / `"failed"`), ascending, ms.
    pub per_outcome: BTreeMap<String, Vec<f64>>,
    /// Extraction-level cache tally.
    pub experiment_cache: CacheLevelStats,
    /// Built-model cache tally.
    pub model_cache: CacheLevelStats,
    /// Prepared-factorization cache tally.
    pub factor_cache: CacheLevelStats,
    /// Requests per accepted factorization strategy.
    pub strategies: BTreeMap<String, usize>,
    /// Requests per iterative preconditioner.
    pub preconditioners: BTreeMap<String, usize>,
    /// Degraded requests per reason.
    pub degraded_reasons: BTreeMap<String, usize>,
    /// Failed requests per error category.
    pub errors: BTreeMap<String, usize>,
    /// Requests per time bucket (key = bucket start, Unix ms).
    pub throughput: BTreeMap<u64, usize>,
    /// Width of the throughput buckets, ms.
    pub bucket_ms: u64,
    /// Largest peak-scratch estimate seen, bytes.
    pub peak_scratch_bytes: Option<u64>,
}

/// Aggregates parsed ledger records. `bucket_ms` sets the throughput
/// bucket width (pass 0 for the 60 s default).
#[must_use]
pub fn aggregate(records: &[LedgerRecord], bucket_ms: u64) -> LedgerStats {
    let bucket_ms = if bucket_ms == 0 { 60_000 } else { bucket_ms };
    let mut stats = LedgerStats {
        bucket_ms,
        ..LedgerStats::default()
    };
    for rec in records {
        let (ts_ms, run) = match rec {
            LedgerRecord::Snapshot { .. } => {
                stats.snapshots += 1;
                continue;
            }
            LedgerRecord::Request { ts_ms, run, .. } => (*ts_ms, run),
        };
        stats.total += 1;
        stats.retries += run.retries;
        stats.latencies_ms.push(run.total_ms);
        stats
            .per_kind
            .entry(if run.kind.is_empty() {
                "(unparseable)".to_string()
            } else {
                run.kind.clone()
            })
            .or_default()
            .push(run.total_ms);
        let outcome = if run.ok { "ok" } else { "failed" };
        stats
            .per_outcome
            .entry(outcome.to_string())
            .or_default()
            .push(run.total_ms);
        if run.ok {
            stats.ok += 1;
            for (level, hit) in [
                (&mut stats.experiment_cache, run.experiment_hit),
                (&mut stats.model_cache, run.model_hit),
                (&mut stats.factor_cache, run.factor_hit),
            ] {
                if hit {
                    level.hits += 1;
                } else {
                    level.misses += 1;
                }
            }
        } else {
            stats.failed += 1;
            let cat = run.error.clone().unwrap_or_else(|| "unknown".to_string());
            *stats.errors.entry(cat).or_default() += 1;
        }
        if run.degraded {
            stats.degraded += 1;
            let reason = run
                .degraded_reason
                .clone()
                .unwrap_or_else(|| "solve".to_string());
            *stats.degraded_reasons.entry(reason).or_default() += 1;
        }
        if let Some(s) = &run.strategy {
            *stats.strategies.entry(s.clone()).or_default() += 1;
        }
        if let Some(p) = &run.preconditioner {
            *stats.preconditioners.entry(p.clone()).or_default() += 1;
        }
        if let Some(b) = run.peak_scratch_bytes {
            stats.peak_scratch_bytes = Some(stats.peak_scratch_bytes.unwrap_or(0).max(b));
        }
        *stats
            .throughput
            .entry(ts_ms / bucket_ms * bucket_ms)
            .or_default() += 1;
    }
    stats.latencies_ms.sort_by(f64::total_cmp);
    for v in stats.per_kind.values_mut() {
        v.sort_by(f64::total_cmp);
    }
    for v in stats.per_outcome.values_mut() {
        v.sort_by(f64::total_cmp);
    }
    stats
}

impl LedgerStats {
    /// Latency distribution over all requests.
    #[must_use]
    pub fn latency(&self) -> LatencySummary {
        LatencySummary::from_sorted(&self.latencies_ms)
    }

    /// Percentage of requests served degraded (0 when empty).
    #[must_use]
    pub fn degraded_pct(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.degraded as f64 / self.total as f64 * 100.0
        }
    }

    /// Percentage of requests that failed (0 when empty).
    #[must_use]
    pub fn failed_pct(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.failed as f64 / self.total as f64 * 100.0
        }
    }

    /// Human-readable report.
    #[must_use]
    pub fn render_text(&self) -> String {
        fn fmt_ms(v: Option<f64>) -> String {
            v.map_or_else(|| "-".to_string(), |x| format!("{x:.3} ms"))
        }
        fn latency_line(out: &mut String, label: &str, l: &LatencySummary) {
            let _ = writeln!(
                out,
                "  {label:<28} {:>6}x  p50 {:>12}  p90 {:>12}  p99 {:>12}  max {:>12}",
                l.count,
                fmt_ms(l.p50),
                fmt_ms(l.p90),
                fmt_ms(l.p99),
                fmt_ms(l.max)
            );
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "ledger stats: {} requests ({} ok, {} failed, {} degraded, {} retries{})",
            self.total,
            self.ok,
            self.failed,
            self.degraded,
            self.retries,
            if self.snapshots > 0 {
                format!(", {} snapshots", self.snapshots)
            } else {
                String::new()
            }
        );
        out.push_str("latency:\n");
        latency_line(&mut out, "all", &self.latency());
        for (kind, lat) in &self.per_kind {
            latency_line(&mut out, kind, &LatencySummary::from_sorted(lat));
        }
        for (outcome, lat) in &self.per_outcome {
            latency_line(
                &mut out,
                &format!("outcome:{outcome}"),
                &LatencySummary::from_sorted(lat),
            );
        }
        out.push_str("cache hit ratios:\n");
        for (name, level) in [
            ("experiment", self.experiment_cache),
            ("model", self.model_cache),
            ("factor", self.factor_cache),
        ] {
            let ratio = level
                .hit_ratio()
                .map_or_else(|| "-".to_string(), |r| format!("{:.1}%", r * 100.0));
            let _ = writeln!(
                out,
                "  {name:<12} {:>4} hits / {:>4} misses  ({ratio})",
                level.hits, level.misses
            );
        }
        let breakdowns: [(&str, &BTreeMap<String, usize>); 4] = [
            ("strategies", &self.strategies),
            ("preconditioners", &self.preconditioners),
            ("degraded reasons", &self.degraded_reasons),
            ("errors", &self.errors),
        ];
        for (title, map) in breakdowns {
            if map.is_empty() {
                continue;
            }
            let _ = writeln!(out, "{title}:");
            for (k, v) in map {
                let _ = writeln!(out, "  {k:<28} {v:>6}");
            }
        }
        if !self.throughput.is_empty() {
            let _ = writeln!(out, "throughput ({} s buckets):", self.bucket_ms / 1000);
            let first = self.throughput.keys().next().copied().unwrap_or(0);
            for (t, n) in &self.throughput {
                let _ = writeln!(out, "  t+{:<6}s {n:>6} requests", (t - first) / 1000);
            }
        }
        if let Some(b) = self.peak_scratch_bytes {
            let _ = writeln!(out, "peak scratch estimate: {b} bytes");
        }
        out
    }

    /// Machine-readable report (one JSON object).
    #[must_use]
    pub fn render_json(&self) -> String {
        fn json_opt_f64(v: Option<f64>) -> String {
            match v {
                Some(x) if x.is_finite() => format!("{x}"),
                _ => "null".to_string(),
            }
        }
        fn latency_obj(l: &LatencySummary) -> String {
            format!(
                "{{\"count\":{},\"p50_ms\":{},\"p90_ms\":{},\"p99_ms\":{},\"max_ms\":{},\"mean_ms\":{}}}",
                l.count,
                json_opt_f64(l.p50),
                json_opt_f64(l.p90),
                json_opt_f64(l.p99),
                json_opt_f64(l.max),
                json_opt_f64(l.mean)
            )
        }
        fn count_map(map: &BTreeMap<String, usize>) -> String {
            let mut out = String::from("{");
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":{v}", json::escape(k));
            }
            out.push('}');
            out
        }
        fn cache_obj(level: CacheLevelStats) -> String {
            format!(
                "{{\"hits\":{},\"misses\":{},\"hit_ratio\":{}}}",
                level.hits,
                level.misses,
                json_opt_f64(level.hit_ratio())
            )
        }
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"total\":{},\"ok\":{},\"failed\":{},\"degraded\":{},\"retries\":{},\"snapshots\":{}",
            self.total, self.ok, self.failed, self.degraded, self.retries, self.snapshots
        );
        let _ = write!(
            out,
            ",\"degraded_pct\":{},\"failed_pct\":{}",
            self.degraded_pct(),
            self.failed_pct()
        );
        let _ = write!(out, ",\"latency_ms\":{}", latency_obj(&self.latency()));
        out.push_str(",\"per_kind\":{");
        for (i, (k, lat)) in self.per_kind.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{}",
                json::escape(k),
                latency_obj(&LatencySummary::from_sorted(lat))
            );
        }
        out.push_str("},\"per_outcome\":{");
        for (i, (k, lat)) in self.per_outcome.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{}",
                json::escape(k),
                latency_obj(&LatencySummary::from_sorted(lat))
            );
        }
        out.push('}');
        let _ = write!(
            out,
            ",\"cache\":{{\"experiment\":{},\"model\":{},\"factor\":{}}}",
            cache_obj(self.experiment_cache),
            cache_obj(self.model_cache),
            cache_obj(self.factor_cache)
        );
        let _ = write!(out, ",\"strategies\":{}", count_map(&self.strategies));
        let _ = write!(out, ",\"preconditioners\":{}", count_map(&self.preconditioners));
        let _ = write!(out, ",\"degraded_reasons\":{}", count_map(&self.degraded_reasons));
        let _ = write!(out, ",\"errors\":{}", count_map(&self.errors));
        let _ = write!(out, ",\"throughput\":{{\"bucket_ms\":{},\"buckets\":[", self.bucket_ms);
        for (i, (t, n)) in self.throughput.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"t_ms\":{t},\"requests\":{n}}}");
        }
        out.push_str("]}");
        match self.peak_scratch_bytes {
            Some(b) => {
                let _ = write!(out, ",\"peak_scratch_bytes\":{b}");
            }
            None => out.push_str(",\"peak_scratch_bytes\":null"),
        }
        out.push('}');
        out
    }
}

/// Which aggregate a [`FailCondition`] thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailMetric {
    /// Overall p50 latency (duration threshold).
    P50,
    /// Overall p90 latency (duration threshold).
    P90,
    /// Overall p99 latency (duration threshold).
    P99,
    /// Overall max latency (duration threshold).
    Max,
    /// Percentage of degraded requests (percent threshold).
    DegradedPct,
    /// Percentage of failed requests (percent threshold).
    FailedPct,
}

impl FailMetric {
    fn label(self) -> &'static str {
        match self {
            FailMetric::P50 => "p50",
            FailMetric::P90 => "p90",
            FailMetric::P99 => "p99",
            FailMetric::Max => "max",
            FailMetric::DegradedPct => "degraded",
            FailMetric::FailedPct => "failed",
        }
    }
}

/// One `--fail-if` threshold: fail when the metric **exceeds** the value.
#[derive(Debug, Clone, PartialEq)]
pub struct FailCondition {
    /// The thresholded aggregate.
    pub metric: FailMetric,
    /// Threshold: ms for latency metrics, percent for ratio metrics.
    pub threshold: f64,
    /// The expression as the user wrote it (for messages).
    pub raw: String,
}

/// Parses a `--fail-if` expression: `METRIC>VALUE` with `METRIC` one of
/// `p50|p90|p99|max` (value a duration: `250ms`, `1.5s`, `800us`; bare
/// numbers are ms) or `degraded|failed` (value a percentage: `5%`; bare
/// numbers are percent points).
///
/// # Errors
///
/// A usage message naming the malformed part.
pub fn parse_fail_if(expr: &str) -> Result<FailCondition, String> {
    let (metric_txt, value_txt) = expr
        .split_once('>')
        .ok_or_else(|| format!("fail-if expression {expr:?} must look like METRIC>VALUE"))?;
    let metric = match metric_txt.trim().to_ascii_lowercase().as_str() {
        "p50" => FailMetric::P50,
        "p90" => FailMetric::P90,
        "p99" => FailMetric::P99,
        "max" => FailMetric::Max,
        "degraded" => FailMetric::DegradedPct,
        "failed" => FailMetric::FailedPct,
        other => {
            return Err(format!(
                "unknown fail-if metric {other:?} (expected p50, p90, p99, max, degraded, or failed)"
            ))
        }
    };
    let value_txt = value_txt.trim();
    let is_pct_metric = matches!(metric, FailMetric::DegradedPct | FailMetric::FailedPct);
    // (suffix kind, multiplier into the metric's native unit)
    let (number_txt, is_duration, scale) = if let Some(n) = value_txt.strip_suffix('%') {
        (n, false, 1.0)
    } else if let Some(n) = value_txt.strip_suffix("ms") {
        (n, true, 1.0)
    } else if let Some(n) = value_txt.strip_suffix("us") {
        (n, true, 1e-3)
    } else if let Some(n) = value_txt.strip_suffix('s') {
        (n, true, 1e3)
    } else {
        // Bare number: ms for latency metrics, percent points otherwise.
        (value_txt, !is_pct_metric, 1.0)
    };
    if is_pct_metric && is_duration {
        return Err(format!(
            "percentage metric {:?} takes a percent value (e.g. 5%), not a duration",
            metric.label()
        ));
    }
    if !is_pct_metric && !is_duration {
        return Err(format!(
            "latency metric {:?} takes a duration (e.g. 250ms), not a percentage",
            metric.label()
        ));
    }
    let number: f64 = number_txt
        .trim()
        .parse()
        .map_err(|_| format!("fail-if value {value_txt:?} is not a number"))?;
    if !number.is_finite() || number < 0.0 {
        return Err(format!("fail-if value {value_txt:?} must be finite and non-negative"));
    }
    Ok(FailCondition {
        metric,
        threshold: number * scale,
        raw: expr.trim().to_string(),
    })
}

impl FailCondition {
    /// Checks the condition against aggregated stats: `Some(message)`
    /// describes the breach, `None` means the gate passes. Latency
    /// metrics pass vacuously over an empty ledger.
    #[must_use]
    pub fn check(&self, stats: &LedgerStats) -> Option<String> {
        let latency = stats.latency();
        let (actual, unit) = match self.metric {
            FailMetric::P50 => (latency.p50?, "ms"),
            FailMetric::P90 => (latency.p90?, "ms"),
            FailMetric::P99 => (latency.p99?, "ms"),
            FailMetric::Max => (latency.max?, "ms"),
            FailMetric::DegradedPct => (stats.degraded_pct(), "%"),
            FailMetric::FailedPct => (stats.failed_pct(), "%"),
        };
        if actual > self.threshold {
            Some(format!(
                "{}: {} = {actual:.3}{unit} exceeds {:.3}{unit}",
                self.raw,
                self.metric.label(),
                self.threshold
            ))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::RunRecord;

    fn rec(seq: u64, ts_ms: u64, run: RunRecord) -> LedgerRecord {
        LedgerRecord::Request {
            seq,
            ts_ms,
            run: Box::new(run),
        }
    }

    fn ok_run(kind: &str, total_ms: f64, model_hit: bool) -> RunRecord {
        RunRecord {
            id: format!("{kind}-{total_ms}"),
            ok: true,
            kind: kind.to_string(),
            ran: Some(kind.to_string()),
            analysis: "transient".to_string(),
            model_hit,
            strategy: Some("sparse-lu".to_string()),
            total_ms,
            ..RunRecord::default()
        }
    }

    fn mixed_records() -> Vec<LedgerRecord> {
        let mut failed = RunRecord {
            id: "boom".to_string(),
            ok: false,
            kind: "PEEC".to_string(),
            analysis: "transient".to_string(),
            error: Some("panic".to_string()),
            retries: 2,
            total_ms: 4.0,
            ..RunRecord::default()
        };
        failed.strategy = None;
        let degraded = RunRecord {
            degraded: true,
            degraded_reason: Some("budget".to_string()),
            ..ok_run("full VPEC", 8.0, false)
        };
        vec![
            rec(1, 0, ok_run("PEEC", 1.0, false)),
            rec(2, 10, ok_run("PEEC", 2.0, true)),
            rec(3, 20, failed),
            rec(4, 30, degraded),
            LedgerRecord::Snapshot { seq: 5, ts_ms: 40 },
        ]
    }

    #[test]
    fn aggregate_matches_known_composition() {
        let stats = aggregate(&mixed_records(), 60_000);
        assert_eq!(
            (stats.total, stats.ok, stats.failed, stats.degraded, stats.retries),
            (4, 3, 1, 1, 2)
        );
        assert_eq!(stats.snapshots, 1);
        assert_eq!(stats.model_cache, CacheLevelStats { hits: 1, misses: 2 });
        assert_eq!(stats.strategies.get("sparse-lu"), Some(&3));
        assert_eq!(stats.degraded_reasons.get("budget"), Some(&1));
        assert_eq!(stats.errors.get("panic"), Some(&1));
        assert_eq!(stats.per_kind["PEEC"].len(), 3);
        assert_eq!(stats.per_outcome["failed"], vec![4.0]);
        let latency = stats.latency();
        assert_eq!(latency.p50, Some(2.0));
        assert_eq!(latency.max, Some(8.0));
        assert_eq!(stats.throughput.values().sum::<usize>(), 4);
    }

    #[test]
    fn percentiles_are_exact_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&v, 0.50), Some(50.0));
        assert_eq!(percentile(&v, 0.99), Some(99.0));
        assert_eq!(percentile(&v, 1.0), Some(100.0));
        assert_eq!(percentile(&[], 0.5), None);
        assert_eq!(percentile(&[7.0], 0.99), Some(7.0));
    }

    #[test]
    fn json_report_parses_and_carries_the_keys() {
        let stats = aggregate(&mixed_records(), 60_000);
        let text = stats.render_json();
        let v = json::parse(&text).expect("stats JSON parses");
        assert_eq!(v.get("total").and_then(json::JsonValue::as_u64), Some(4));
        assert!(v.get("latency_ms").and_then(|l| l.get("p99_ms")).is_some());
        assert!(v.get("cache").and_then(|c| c.get("model")).is_some());
        assert!(v.get("strategies").is_some());
        assert!(v.get("throughput").is_some());
        let rendered = stats.render_text();
        assert!(rendered.contains("4 requests"));
        assert!(rendered.contains("sparse-lu"));
    }

    #[test]
    fn fail_if_grammar_and_thresholds() {
        let c = parse_fail_if("p99>250ms").unwrap();
        assert_eq!((c.metric, c.threshold), (FailMetric::P99, 250.0));
        assert_eq!(parse_fail_if("max>1.5s").unwrap().threshold, 1500.0);
        assert_eq!(parse_fail_if("p50>800us").unwrap().threshold, 0.8);
        assert_eq!(parse_fail_if("degraded>5%").unwrap().threshold, 5.0);
        assert_eq!(parse_fail_if("failed>0").unwrap().threshold, 0.0);
        assert!(parse_fail_if("p99=250ms").is_err());
        assert!(parse_fail_if("p17>1ms").is_err());
        assert!(parse_fail_if("p99>5%").is_err());
        assert!(parse_fail_if("degraded>5ms").is_err());
        assert!(parse_fail_if("p99>banana").is_err());

        let stats = aggregate(&mixed_records(), 60_000);
        // p99 over [1,2,4,8] = 8 ms.
        assert!(parse_fail_if("p99>60s").unwrap().check(&stats).is_none());
        let breach = parse_fail_if("p99>7ms").unwrap().check(&stats).unwrap();
        assert!(breach.contains("exceeds"), "{breach}");
        // 1 of 4 degraded = 25%.
        assert!(parse_fail_if("degraded>25%").unwrap().check(&stats).is_none());
        assert!(parse_fail_if("degraded>24%").unwrap().check(&stats).is_some());
        // Latency gates pass vacuously on an empty ledger.
        let empty = aggregate(&[], 0);
        assert!(parse_fail_if("p99>1ms").unwrap().check(&empty).is_none());
        assert!(parse_fail_if("failed>0%").unwrap().check(&empty).is_none());
    }
}
