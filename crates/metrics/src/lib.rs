//! Service-level observability for the VPEC engine — **vpec-metrics**.
//!
//! Zero-dependency (the workspace's own [`vpec_trace`] JSON helpers are
//! the only import) metrics stack layered under `vpec batch` / `vpec
//! serve`:
//!
//! * [`registry`] — a process-wide registry of counters, gauges, and
//!   [`histogram`] log-scale latency histograms. Off by default; one
//!   relaxed atomic load per call site while off. When enabled it also
//!   bridges [`vpec_trace::counter_add`] so the engine's existing trace
//!   counters (cache hits, retries, degradations) surface in snapshots
//!   without re-instrumenting the call sites.
//! * [`ledger`] — the run ledger: one schema-validated JSONL record per
//!   engine request (outcome, error class, retries, degradation, cache
//!   levels, solver strategy, phase times, scratch estimate), plus
//!   periodic in-stream snapshot records for long-running streams.
//! * [`exposition`] — Prometheus-style text rendering of a registry
//!   snapshot, written atomically (`write → rename`) for scrapers.
//! * [`stats`] — offline aggregation of one or more ledgers into a
//!   fleet report (exact latency percentiles per kind and outcome,
//!   cache hit ratios per level, strategy/degradation/error
//!   breakdowns, throughput buckets) with `--fail-if` CI thresholds.
//!
//! See DESIGN.md §15 for the registry model, the full ledger schema,
//! and the aggregation semantics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exposition;
pub mod histogram;
pub mod ledger;
pub mod registry;
pub mod stats;

pub use exposition::{render, write_atomic};
pub use histogram::{bucket_bound_ms, Histogram, HistogramSnapshot, BUCKET_COUNT};
pub use ledger::{now_ms, parse_ledger, parse_line, Ledger, LedgerRecord, RunRecord};
pub use registry::{
    counter_add, disable, enabled, gauge_set, install, observe_ms, snapshot, RegistrySnapshot,
};
pub use stats::{
    aggregate, parse_fail_if, percentile, CacheLevelStats, FailCondition, FailMetric,
    LatencySummary, LedgerStats,
};
