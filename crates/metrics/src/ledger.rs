//! The run ledger: one structured JSONL record per engine request.
//!
//! A ledger file is the engine's flight recorder. Every request —
//! including ones that failed to parse — appends exactly one
//! `"rec":"request"` line capturing the outcome, error class, retries,
//! degradation reason, which cache levels hit, the accepted solver
//! strategy and preconditioner, the matrix dimension, the
//! queue-wait/build/solve phase split, and a peak-scratch estimate.
//! Long-running `serve` streams interleave periodic `"rec":"snapshot"`
//! lines with registry counters and histogram quick-stats. Lines are
//! flushed one at a time so a crashed process still leaves a valid
//! ledger behind; `seq` is contiguous from 1 so post-hoc tools detect
//! truncation or interleaving.
//!
//! The full field-by-field schema is documented in DESIGN.md §15.

use crate::registry::RegistrySnapshot;
use std::fmt::Write as _;
use std::io::Write as _;
use vpec_trace::json::{self, JsonValue};

/// Milliseconds since the Unix epoch (0 if the clock is before it).
#[must_use]
pub fn now_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Telemetry of one engine request, as written to the run ledger.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunRecord {
    /// Request id (from the request, or `lineN` for unparseable lines).
    pub id: String,
    /// `true` when the response was `status: "ok"` (degraded included).
    pub ok: bool,
    /// Error category (`"panic"`, `"deadline"`, `"budget"`, …) when the
    /// request failed.
    pub error: Option<String>,
    /// Requested model-kind label (empty for unparseable lines).
    pub kind: String,
    /// Kind actually run (differs from `kind` after degradation).
    pub ran: Option<String>,
    /// Analysis class: `"transient"`, `"ac"`, `"build"`, or `"unknown"`.
    pub analysis: String,
    /// Retries consumed (attempts beyond the first).
    pub retries: usize,
    /// The response was served degraded.
    pub degraded: bool,
    /// Why the engine degraded (`"budget"`, `"deadline"`), when it did.
    pub degraded_reason: Option<String>,
    /// The geometry-keyed extraction cache answered.
    pub experiment_hit: bool,
    /// The built-model cache answered.
    pub model_hit: bool,
    /// The prepared-factorization cache answered.
    pub factor_hit: bool,
    /// Accepted factorization strategy label (`"sparse-lu"`, …), when a
    /// transient ran.
    pub strategy: Option<String>,
    /// Preconditioner the iterative stage settled on, when it did.
    pub preconditioner: Option<String>,
    /// MNA matrix dimension of the transient system, when known.
    pub dim: Option<usize>,
    /// Circuit element count of the model that answered.
    pub elements: Option<usize>,
    /// Time between the previous response and this request starting, ms
    /// (stream read + wait time).
    pub queue_ms: f64,
    /// Model-build phase wall time, ms.
    pub build_ms: Option<f64>,
    /// Solve phase wall time, ms.
    pub solve_ms: Option<f64>,
    /// End-to-end request wall time, ms.
    pub total_ms: f64,
    /// Upper-bound scratch estimate for the solve: `8·dim²` bytes (a
    /// dense factorization of the MNA system), when `dim` is known.
    pub peak_scratch_bytes: Option<u64>,
}

fn push_opt_str(out: &mut String, key: &str, v: Option<&str>) {
    match v {
        Some(s) => {
            let _ = write!(out, ",\"{key}\":\"{}\"", json::escape(s));
        }
        None => {
            let _ = write!(out, ",\"{key}\":null");
        }
    }
}

fn push_opt_u64(out: &mut String, key: &str, v: Option<u64>) {
    match v {
        Some(n) => {
            let _ = write!(out, ",\"{key}\":{n}");
        }
        None => {
            let _ = write!(out, ",\"{key}\":null");
        }
    }
}

fn push_f64(out: &mut String, key: &str, v: f64) {
    if v.is_finite() {
        let _ = write!(out, ",\"{key}\":{v}");
    } else {
        let _ = write!(out, ",\"{key}\":null");
    }
}

fn push_opt_f64(out: &mut String, key: &str, v: Option<f64>) {
    match v {
        Some(x) if x.is_finite() => {
            let _ = write!(out, ",\"{key}\":{x}");
        }
        _ => {
            let _ = write!(out, ",\"{key}\":null");
        }
    }
}

impl RunRecord {
    /// Serializes the record as one ledger line (no trailing newline)
    /// with the given sequence number and timestamp.
    #[must_use]
    pub fn to_json_line(&self, seq: u64, ts_ms: u64) -> String {
        let mut out = String::with_capacity(320);
        let _ = write!(out, "{{\"rec\":\"request\",\"seq\":{seq},\"ts_ms\":{ts_ms}");
        let _ = write!(out, ",\"id\":\"{}\"", json::escape(&self.id));
        let _ = write!(out, ",\"ok\":{}", self.ok);
        push_opt_str(&mut out, "error", self.error.as_deref());
        let _ = write!(out, ",\"kind\":\"{}\"", json::escape(&self.kind));
        push_opt_str(&mut out, "ran", self.ran.as_deref());
        let _ = write!(out, ",\"analysis\":\"{}\"", json::escape(&self.analysis));
        let _ = write!(out, ",\"retries\":{}", self.retries);
        let _ = write!(out, ",\"degraded\":{}", self.degraded);
        push_opt_str(&mut out, "degraded_reason", self.degraded_reason.as_deref());
        let _ = write!(out, ",\"experiment_hit\":{}", self.experiment_hit);
        let _ = write!(out, ",\"model_hit\":{}", self.model_hit);
        let _ = write!(out, ",\"factor_hit\":{}", self.factor_hit);
        push_opt_str(&mut out, "strategy", self.strategy.as_deref());
        push_opt_str(&mut out, "preconditioner", self.preconditioner.as_deref());
        push_opt_u64(&mut out, "dim", self.dim.map(|d| d as u64));
        push_opt_u64(&mut out, "elements", self.elements.map(|e| e as u64));
        push_f64(&mut out, "queue_ms", self.queue_ms);
        push_opt_f64(&mut out, "build_ms", self.build_ms);
        push_opt_f64(&mut out, "solve_ms", self.solve_ms);
        push_f64(&mut out, "total_ms", self.total_ms);
        push_opt_u64(&mut out, "peak_scratch_bytes", self.peak_scratch_bytes);
        out.push('}');
        out
    }
}

/// One parsed ledger line.
#[derive(Debug, Clone, PartialEq)]
pub enum LedgerRecord {
    /// A per-request record.
    Request {
        /// Contiguous-from-1 sequence number.
        seq: u64,
        /// Unix milliseconds when the record was written.
        ts_ms: u64,
        /// The request telemetry (boxed: a snapshot line is two integers,
        /// a request line is ~20 fields).
        run: Box<RunRecord>,
    },
    /// A periodic in-stream registry snapshot (from `serve`).
    Snapshot {
        /// Contiguous-from-1 sequence number.
        seq: u64,
        /// Unix milliseconds when the snapshot was taken.
        ts_ms: u64,
    },
}

impl LedgerRecord {
    /// The record's sequence number.
    #[must_use]
    pub fn seq(&self) -> u64 {
        match self {
            LedgerRecord::Request { seq, .. } | LedgerRecord::Snapshot { seq, .. } => *seq,
        }
    }
}

fn req_u64(v: &JsonValue, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("missing or non-integer \"{key}\""))
}

fn req_str(v: &JsonValue, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing or non-string \"{key}\""))
}

fn req_bool(v: &JsonValue, key: &str) -> Result<bool, String> {
    match v.get(key) {
        Some(JsonValue::Bool(b)) => Ok(*b),
        _ => Err(format!("missing or non-boolean \"{key}\"")),
    }
}

fn req_f64(v: &JsonValue, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("missing or non-numeric \"{key}\""))
}

/// `null` / absent → `None`; wrong type → error.
fn opt_str(v: &JsonValue, key: &str) -> Result<Option<String>, String> {
    match v.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(JsonValue::Str(s)) => Ok(Some(s.clone())),
        Some(_) => Err(format!("\"{key}\" must be a string or null")),
    }
}

fn opt_u64(v: &JsonValue, key: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(n) => n
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("\"{key}\" must be a non-negative integer or null")),
    }
}

fn opt_f64(v: &JsonValue, key: &str) -> Result<Option<f64>, String> {
    match v.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(n) => n
            .as_f64()
            .map(Some)
            .ok_or_else(|| format!("\"{key}\" must be a number or null")),
    }
}

/// Parses and schema-validates one ledger line.
///
/// # Errors
///
/// A human-readable message for malformed JSON, an unknown `rec` tag, or
/// a missing/mistyped required field.
pub fn parse_line(line: &str) -> Result<LedgerRecord, String> {
    let v = json::parse(line)?;
    let rec = req_str(&v, "rec")?;
    let seq = req_u64(&v, "seq")?;
    let ts_ms = req_u64(&v, "ts_ms")?;
    match rec.as_str() {
        "snapshot" => Ok(LedgerRecord::Snapshot { seq, ts_ms }),
        "request" => {
            let run = RunRecord {
                id: req_str(&v, "id")?,
                ok: req_bool(&v, "ok")?,
                error: opt_str(&v, "error")?,
                kind: req_str(&v, "kind")?,
                ran: opt_str(&v, "ran")?,
                analysis: req_str(&v, "analysis")?,
                retries: req_u64(&v, "retries")? as usize,
                degraded: req_bool(&v, "degraded")?,
                degraded_reason: opt_str(&v, "degraded_reason")?,
                experiment_hit: req_bool(&v, "experiment_hit")?,
                model_hit: req_bool(&v, "model_hit")?,
                factor_hit: req_bool(&v, "factor_hit")?,
                strategy: opt_str(&v, "strategy")?,
                preconditioner: opt_str(&v, "preconditioner")?,
                dim: opt_u64(&v, "dim")?.map(|d| d as usize),
                elements: opt_u64(&v, "elements")?.map(|e| e as usize),
                queue_ms: req_f64(&v, "queue_ms")?,
                build_ms: opt_f64(&v, "build_ms")?,
                solve_ms: opt_f64(&v, "solve_ms")?,
                total_ms: req_f64(&v, "total_ms")?,
                peak_scratch_bytes: opt_u64(&v, "peak_scratch_bytes")?,
            };
            Ok(LedgerRecord::Request {
                seq,
                ts_ms,
                run: Box::new(run),
            })
        }
        other => Err(format!("unknown \"rec\" tag {other:?}")),
    }
}

/// Parses a whole ledger file: every non-blank line must validate, and
/// `seq` must be contiguous starting at 1.
///
/// # Errors
///
/// The first offending line, with its line number.
pub fn parse_ledger(content: &str) -> Result<Vec<LedgerRecord>, String> {
    let mut out = Vec::new();
    for (lineno, line) in content.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let n = lineno + 1;
        let rec = parse_line(line).map_err(|e| format!("line {n}: {e}"))?;
        let expected = out.len() as u64 + 1;
        if rec.seq() != expected {
            return Err(format!(
                "line {n}: expected seq {expected}, got {} (dropped or reordered records)",
                rec.seq()
            ));
        }
        out.push(rec);
    }
    Ok(out)
}

/// A line-flushed ledger writer. Each record costs one `write` + `flush`
/// so a killed process leaves a complete, valid prefix behind.
#[derive(Debug)]
pub struct Ledger {
    file: std::io::BufWriter<std::fs::File>,
    next_seq: u64,
}

impl Ledger {
    /// Creates (truncating) the ledger file at `path`.
    ///
    /// # Errors
    ///
    /// I/O failures creating the file.
    pub fn create(path: &str) -> std::io::Result<Ledger> {
        Ok(Ledger {
            file: std::io::BufWriter::new(std::fs::File::create(path)?),
            next_seq: 1,
        })
    }

    /// Appends one request record, stamping the next sequence number and
    /// the current wall-clock time.
    ///
    /// # Errors
    ///
    /// I/O failures writing the line.
    pub fn record(&mut self, run: &RunRecord) -> std::io::Result<()> {
        let line = run.to_json_line(self.next_seq, now_ms());
        self.next_seq += 1;
        writeln!(self.file, "{line}")?;
        self.file.flush()
    }

    /// Appends one in-stream snapshot record carrying the registry's
    /// counters and histogram quick-stats.
    ///
    /// # Errors
    ///
    /// I/O failures writing the line.
    pub fn snapshot(&mut self, snap: &RegistrySnapshot) -> std::io::Result<()> {
        let mut line = String::with_capacity(256);
        let _ = write!(
            line,
            "{{\"rec\":\"snapshot\",\"seq\":{},\"ts_ms\":{}",
            self.next_seq,
            now_ms()
        );
        self.next_seq += 1;
        line.push_str(",\"counters\":{");
        for (i, (k, v)) in snap.counters.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            let _ = write!(line, "\"{}\":{v}", json::escape(k));
        }
        line.push_str("},\"hist\":{");
        for (i, (k, h)) in snap.histograms.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            let _ = write!(line, "\"{}\":{{\"count\":{}", json::escape(k), h.count);
            push_f64(&mut line, "p50", h.p50);
            push_f64(&mut line, "p90", h.p90);
            push_f64(&mut line, "p99", h.p99);
            push_f64(&mut line, "max", h.max);
            line.push('}');
        }
        line.push_str("}}");
        writeln!(self.file, "{line}")?;
        self.file.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunRecord {
        RunRecord {
            id: "req-1".to_string(),
            ok: true,
            error: None,
            kind: "full VPEC".to_string(),
            ran: Some("gwVPEC(b=4)".to_string()),
            analysis: "transient".to_string(),
            retries: 1,
            degraded: true,
            degraded_reason: Some("budget".to_string()),
            experiment_hit: true,
            model_hit: false,
            factor_hit: false,
            strategy: Some("sparse-lu".to_string()),
            preconditioner: None,
            dim: Some(17),
            elements: Some(120),
            queue_ms: 0.2,
            build_ms: Some(3.5),
            solve_ms: Some(9.25),
            total_ms: 13.25,
            peak_scratch_bytes: Some(8 * 17 * 17),
        }
    }

    #[test]
    fn record_round_trips_through_json() {
        let rec = sample();
        let line = rec.to_json_line(1, 1234);
        match parse_line(&line).unwrap() {
            LedgerRecord::Request { seq, ts_ms, run } => {
                assert_eq!(seq, 1);
                assert_eq!(ts_ms, 1234);
                assert_eq!(*run, rec);
            }
            other => panic!("expected request, got {other:?}"),
        }
    }

    #[test]
    fn parse_rejects_schema_violations() {
        assert!(parse_line("not json").is_err());
        assert!(parse_line("{\"rec\":\"mystery\",\"seq\":1,\"ts_ms\":0}").is_err());
        // Required field missing.
        let line = sample().to_json_line(1, 0).replace("\"ok\":true,", "");
        assert!(parse_line(&line).is_err());
        // Wrong type on an optional field.
        let line = sample().to_json_line(1, 0).replace("\"dim\":17", "\"dim\":\"x\"");
        assert!(parse_line(&line).is_err());
    }

    #[test]
    fn ledger_writes_contiguous_seq() {
        let path = std::env::temp_dir().join("vpec_metrics_ledger_test.jsonl");
        let mut ledger = Ledger::create(&path.display().to_string()).unwrap();
        ledger.record(&sample()).unwrap();
        ledger.snapshot(&RegistrySnapshot::default()).unwrap();
        ledger.record(&sample()).unwrap();
        drop(ledger);
        let content = std::fs::read_to_string(&path).unwrap();
        let records = parse_ledger(&content).unwrap();
        assert_eq!(records.len(), 3);
        assert!(matches!(records[1], LedgerRecord::Snapshot { seq: 2, .. }));
        // A gap in seq is detected.
        let broken = content.replace("\"seq\":3", "\"seq\":7");
        assert!(parse_ledger(&broken).unwrap_err().contains("expected seq 3"));
        let _ = std::fs::remove_file(&path);
    }
}
