//! Prometheus-style text exposition of a [`RegistrySnapshot`].
//!
//! The format is the subset of the Prometheus text format every scraper
//! understands: `# TYPE` comments, `vpec_`-prefixed sanitized metric
//! names, cumulative `_bucket{le="…"}` series plus `_sum`/`_count` for
//! histograms. [`write_atomic`] writes to `<path>.tmp` and renames, so a
//! scraper never observes a half-written file.

use crate::registry::RegistrySnapshot;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// Maps a dotted registry name (`engine.cache.hit`) to a Prometheus
/// metric name (`vpec_engine_cache_hit` + `suffix`).
fn metric_name(raw: &str, suffix: &str) -> String {
    let mut out = String::with_capacity(raw.len() + suffix.len() + 5);
    out.push_str("vpec_");
    for c in raw.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out.push_str(suffix);
    out
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else if v.is_nan() {
        "NaN".to_string()
    } else if v > 0.0 {
        "+Inf".to_string()
    } else {
        "-Inf".to_string()
    }
}

/// Renders the snapshot as Prometheus-style text exposition.
#[must_use]
pub fn render(snapshot: &RegistrySnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let metric = metric_name(name, "_total");
        let _ = writeln!(out, "# TYPE {metric} counter");
        let _ = writeln!(out, "{metric} {value}");
    }
    for (name, value) in &snapshot.gauges {
        let metric = metric_name(name, "");
        let _ = writeln!(out, "# TYPE {metric} gauge");
        let _ = writeln!(out, "{metric} {}", fmt_f64(*value));
    }
    for (name, h) in &snapshot.histograms {
        let metric = metric_name(name, "");
        let _ = writeln!(out, "# TYPE {metric} histogram");
        let mut cumulative = 0u64;
        for (i, &c) in h.counts.iter().enumerate() {
            if c == 0 {
                continue; // cumulative series stays valid without empty buckets
            }
            cumulative += c;
            let bound = crate::histogram::bucket_bound_ms(i);
            let _ = writeln!(out, "{metric}_bucket{{le=\"{}\"}} {cumulative}", fmt_f64(bound));
        }
        let _ = writeln!(out, "{metric}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "{metric}_sum {}", fmt_f64(h.sum));
        let _ = writeln!(out, "{metric}_count {}", h.count);
    }
    out
}

/// Writes the rendered exposition to `path` atomically: the text goes to
/// `<path>.tmp` first and is renamed into place, so concurrent readers
/// see either the previous complete file or the new one.
///
/// # Errors
///
/// I/O failures creating, writing, or renaming the temporary file.
pub fn write_atomic(path: &Path, snapshot: &RegistrySnapshot) -> std::io::Result<()> {
    let text = render(snapshot);
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::Histogram;
    use std::collections::BTreeMap;

    fn sample() -> RegistrySnapshot {
        let mut h = Histogram::new();
        h.record(1.0);
        h.record(100.0);
        let mut histograms = BTreeMap::new();
        histograms.insert("engine.request.total_ms".to_string(), h.snapshot().unwrap());
        let mut counters = BTreeMap::new();
        counters.insert("engine.cache.hit".to_string(), 3u64);
        let mut gauges = BTreeMap::new();
        gauges.insert("engine.queue.depth".to_string(), 2.0);
        RegistrySnapshot {
            counters,
            gauges,
            histograms,
        }
    }

    #[test]
    fn render_covers_all_metric_kinds() {
        let text = render(&sample());
        assert!(text.contains("# TYPE vpec_engine_cache_hit_total counter"));
        assert!(text.contains("vpec_engine_cache_hit_total 3"));
        assert!(text.contains("# TYPE vpec_engine_queue_depth gauge"));
        assert!(text.contains("# TYPE vpec_engine_request_total_ms histogram"));
        assert!(text.contains("vpec_engine_request_total_ms_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("vpec_engine_request_total_ms_sum 101"));
        assert!(text.contains("vpec_engine_request_total_ms_count 2"));
    }

    #[test]
    fn write_atomic_replaces_the_file() {
        let path = std::env::temp_dir().join("vpec_metrics_expo_test.prom");
        std::fs::write(&path, "stale").unwrap();
        write_atomic(&path, &sample()).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("# TYPE"));
        assert!(!std::path::Path::new(&format!("{}.tmp", path.display())).exists());
        let _ = std::fs::remove_file(&path);
    }
}
