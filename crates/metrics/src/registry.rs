//! The process-wide metrics registry: counters, gauges, and latency
//! histograms behind a single relaxed-atomic gate.
//!
//! The registry is **off by default** and costs exactly one relaxed
//! atomic load per call site while off — the same discipline as
//! `vpec_trace` and `VPEC_AUDIT`. [`install`] turns it on and hooks the
//! [`vpec_trace::set_counter_bridge`] so every existing
//! `vpec_trace::counter_add` site (cache hits, retries, pool dispatches,
//! …) surfaces in registry snapshots even when tracing itself is off.

use crate::histogram::{Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

static ENABLED: AtomicBool = AtomicBool::new(false);
static STATE: OnceLock<Mutex<RegistryState>> = OnceLock::new();

#[derive(Debug, Default)]
struct RegistryState {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

fn lock() -> std::sync::MutexGuard<'static, RegistryState> {
    let state = STATE.get_or_init(|| Mutex::new(RegistryState::default()));
    match state.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// `true` when the registry records. This is the hot-path gate: one
/// relaxed atomic load.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns the registry on and installs the trace→registry counter bridge,
/// so counters fired through [`vpec_trace::counter_add`] accumulate here
/// too. Idempotent.
pub fn install() {
    vpec_trace::set_counter_bridge(counter_add);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns recording off again (the bridge stays installed but every call
/// returns after its one-load gate). Test/CLI helper.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Clears all recorded values without changing the enabled state.
pub fn reset() {
    let mut st = lock();
    *st = RegistryState::default();
}

/// Adds `delta` to the named monotonic counter. A no-op when the
/// registry is off.
pub fn counter_add(name: &str, delta: u64) {
    if !enabled() || delta == 0 {
        return;
    }
    let mut st = lock();
    match st.counters.get_mut(name) {
        Some(v) => *v += delta,
        None => {
            st.counters.insert(name.to_string(), delta);
        }
    }
}

/// Sets the named gauge to an instantaneous value. A no-op when the
/// registry is off.
pub fn gauge_set(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    let mut st = lock();
    st.gauges.insert(name.to_string(), value);
}

/// Records one latency observation (milliseconds) into the named
/// histogram. A no-op when the registry is off.
pub fn observe_ms(name: &str, value_ms: f64) {
    if !enabled() {
        return;
    }
    let mut st = lock();
    match st.histograms.get_mut(name) {
        Some(h) => h.record(value_ms),
        None => {
            let mut h = Histogram::new();
            h.record(value_ms);
            st.histograms.insert(name.to_string(), h);
        }
    }
}

/// Point-in-time view of the whole registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegistrySnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram snapshots by name (empty histograms are omitted).
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// Snapshots every counter, gauge and histogram. Empty when the registry
/// is off.
#[must_use]
pub fn snapshot() -> RegistrySnapshot {
    if !enabled() {
        return RegistrySnapshot::default();
    }
    let st = lock();
    RegistrySnapshot {
        counters: st.counters.clone(),
        gauges: st.gauges.clone(),
        histograms: st
            .histograms
            .iter()
            .filter_map(|(k, h)| h.snapshot().map(|s| (k.clone(), s)))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as TestMutex;

    // The registry is process-global; serialize tests that touch it.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: TestMutex<()> = TestMutex::new(());
        match LOCK.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let _g = guard();
        disable();
        reset();
        counter_add("c", 5);
        gauge_set("g", 1.0);
        observe_ms("h", 2.0);
        assert_eq!(snapshot(), RegistrySnapshot::default());
    }

    #[test]
    fn enabled_registry_accumulates() {
        let _g = guard();
        install();
        reset();
        counter_add("requests", 2);
        counter_add("requests", 3);
        gauge_set("depth", 7.5);
        observe_ms("latency", 1.0);
        observe_ms("latency", 4.0);
        let snap = snapshot();
        assert_eq!(snap.counters.get("requests"), Some(&5));
        assert_eq!(snap.gauges.get("depth"), Some(&7.5));
        assert_eq!(snap.histograms.get("latency").map(|h| h.count), Some(2));
        disable();
        reset();
    }

    #[test]
    fn trace_counter_bridge_feeds_the_registry() {
        let _g = guard();
        install();
        reset();
        // Tracing itself stays off — the bridge alone must forward.
        assert!(!vpec_trace::enabled());
        vpec_trace::counter_add("bridged.count", 4);
        assert_eq!(snapshot().counters.get("bridged.count"), Some(&4));
        disable();
        reset();
    }
}
