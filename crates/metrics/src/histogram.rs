//! Fixed-bucket log-scale latency histograms with exact-at-the-edges
//! percentile snapshots.
//!
//! A [`Histogram`] spreads millisecond observations over
//! [`BUCKET_COUNT`] buckets whose upper bounds grow by a factor of √2
//! starting at 1 µs, covering ~1 µs to ~50 min — the full useful range of
//! an engine request — with ≤ ~41% relative quantization error per
//! bucket. Alongside the buckets the histogram tracks the exact count,
//! sum, minimum and maximum, so:
//!
//! * an empty histogram snapshots to `None` rather than fake zeros;
//! * a single-sample histogram reports that sample *exactly* for every
//!   percentile (the bucket bound is clamped into `[min, max]`);
//! * values beyond the top bucket clamp to the exact maximum, never to
//!   the (smaller) top bucket bound.

/// Number of buckets per histogram.
pub const BUCKET_COUNT: usize = 64;

/// Upper bound of the first bucket, in milliseconds (1 µs).
const BASE_MS: f64 = 1e-3;

/// Inclusive upper bound of bucket `index`, in milliseconds:
/// `1 µs · 2^(index/2)`.
#[must_use]
pub fn bucket_bound_ms(index: usize) -> f64 {
    BASE_MS * 2f64.powf(index as f64 * 0.5)
}

/// Bucket holding a (finite, non-negative) observation `v`: the smallest
/// bucket whose upper bound is ≥ `v`, saturating in the last bucket.
fn bucket_index(v: f64) -> usize {
    if v <= BASE_MS {
        return 0;
    }
    let raw = (2.0 * (v / BASE_MS).log2()).ceil();
    let mut idx = if raw.is_finite() && raw < (BUCKET_COUNT - 1) as f64 {
        raw as usize
    } else {
        BUCKET_COUNT - 1
    };
    // The log computation can land one bucket off at exact bounds;
    // nudge so the invariant `bound(idx-1) < v ≤ bound(idx)` holds
    // exactly (the last bucket keeps everything beyond its bound).
    while idx > 0 && bucket_bound_ms(idx - 1) >= v {
        idx -= 1;
    }
    while idx < BUCKET_COUNT - 1 && bucket_bound_ms(idx) < v {
        idx += 1;
    }
    idx
}

/// A log-scale latency histogram over milliseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    counts: [u64; BUCKET_COUNT],
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Histogram {
        Histogram {
            counts: [0; BUCKET_COUNT],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation in milliseconds. Non-finite or negative
    /// values are ignored — a latency can be neither.
    pub fn record(&mut self, value_ms: f64) {
        if !value_ms.is_finite() || value_ms < 0.0 {
            return;
        }
        self.count += 1;
        self.sum += value_ms;
        self.min = self.min.min(value_ms);
        self.max = self.max.max(value_ms);
        self.counts[bucket_index(value_ms)] += 1;
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Nearest-rank quantile `q ∈ (0, 1]`: the upper bound of the bucket
    /// holding the rank-⌈q·count⌉ observation, clamped into the exact
    /// `[min, max]` range. `NaN` when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                return bucket_bound_ms(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Immutable snapshot with exact count/sum/min/max and quantized
    /// p50/p90/p99. `None` when nothing was recorded.
    #[must_use]
    pub fn snapshot(&self) -> Option<HistogramSnapshot> {
        if self.count == 0 {
            return None;
        }
        Some(HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: self.min,
            max: self.max,
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            counts: self.counts,
        })
    }
}

/// Point-in-time view of one [`Histogram`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Exact sum of observations, ms.
    pub sum: f64,
    /// Exact minimum, ms.
    pub min: f64,
    /// Exact maximum, ms.
    pub max: f64,
    /// Median (nearest-rank over buckets, clamped to `[min, max]`), ms.
    pub p50: f64,
    /// 90th percentile, ms.
    pub p90: f64,
    /// 99th percentile, ms.
    pub p99: f64,
    /// Raw per-bucket counts (bucket `i` holds values ≤
    /// [`bucket_bound_ms`]`(i)`).
    pub counts: [u64; BUCKET_COUNT],
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_snapshots_to_none() {
        let h = Histogram::new();
        assert_eq!(h.snapshot(), None);
        assert!(h.quantile(0.5).is_nan());
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn single_sample_percentiles_are_exact() {
        let mut h = Histogram::new();
        h.record(3.7); // sits strictly inside a bucket
        let s = h.snapshot().unwrap();
        assert_eq!(s.count, 1);
        // Every percentile of a one-sample distribution is that sample —
        // exactly, despite the ~41% bucket quantization.
        assert_eq!(s.p50, 3.7);
        assert_eq!(s.p90, 3.7);
        assert_eq!(s.p99, 3.7);
        assert_eq!(s.min, 3.7);
        assert_eq!(s.max, 3.7);
        assert_eq!(s.sum, 3.7);
    }

    #[test]
    fn beyond_top_bucket_clamps_to_exact_max() {
        let mut h = Histogram::new();
        let huge = 1e12; // ~31.7 years in ms, way past the ~50 min top bound
        assert!(huge > bucket_bound_ms(BUCKET_COUNT - 1));
        h.record(huge);
        let s = h.snapshot().unwrap();
        assert_eq!(s.max, huge);
        assert_eq!(s.p99, huge, "over-the-top value must clamp to max, not the top bound");
        assert_eq!(s.counts[BUCKET_COUNT - 1], 1);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        let mut h = Histogram::new();
        for i in 1..=1000 {
            h.record(i as f64 * 0.01); // 0.01 .. 10 ms
        }
        let s = h.snapshot().unwrap();
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99);
        assert!(s.p99 <= s.max && s.min <= s.p50);
        // √2 buckets: each quantile within ~41% above the true value.
        assert!(s.p50 >= 5.0 && s.p50 <= 5.0 * 1.42, "{}", s.p50);
        assert!(s.p99 >= 9.9 && s.p99 <= 9.9 * 1.42, "{}", s.p99);
    }

    #[test]
    fn non_finite_and_negative_observations_are_ignored() {
        let mut h = Histogram::new();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(-1.0);
        assert_eq!(h.snapshot(), None);
    }

    #[test]
    fn bucket_bounds_cover_the_edges() {
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(1e-3), 0);
        // A value exactly on a bound lands in that bucket (inclusive
        // upper bound), never the next one up.
        for i in 0..BUCKET_COUNT {
            let b = bucket_bound_ms(i);
            assert_eq!(bucket_index(b), i, "bound {i} maps into the wrong bucket");
        }
    }
}
