#!/usr/bin/env bash
# Offline CI gate: build, test, lint. No network access required — the
# workspace has no external dependencies.
#
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "==> cargo build --release (workspace, all targets)"
cargo build --release --workspace --all-targets

echo "==> cargo test -q (workspace, VPEC_AUDIT=full)"
# Debug tests default to full auditing anyway; pinning it here keeps the
# gate meaningful even when the caller exported VPEC_AUDIT=off.
VPEC_AUDIT=full cargo test -q --workspace

echo "==> release-profile audit pass (tier-1 integration tests, VPEC_AUDIT=full)"
# Release builds default to audits OFF; this run covers the enforcement
# paths in the exact profile users deploy.
VPEC_AUDIT=full cargo test -q --release --test audit_invariants --test paper_claims

echo "==> cargo clippy (workspace, all targets, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> perf bench smoke run (--quick, smallest layout)"
smoke_json="target/bench_perf_smoke.json"
cargo run --release -q -p vpec-bench --bin perf -- --quick --out "$smoke_json"
# The smoke JSON must carry the tracked schema: header keys plus at
# least one timed phase with its equivalence metric.
for key in '"bench": "perf"' '"available_parallelism"' '"phases"' \
           '"serial_seconds"' '"parallel_seconds"' '"speedup"' '"max_abs_diff"'; do
  if ! grep -q "$key" "$smoke_json"; then
    echo "BENCH_perf smoke output is malformed: missing $key" >&2
    exit 1
  fi
done

echo "==> all checks passed"
