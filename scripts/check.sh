#!/usr/bin/env bash
# Offline CI gate: build, test, lint. No network access required — the
# workspace has no external dependencies.
#
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "==> cargo build --release (workspace, all targets)"
cargo build --release --workspace --all-targets

echo "==> cargo test -q (workspace, VPEC_AUDIT=full)"
# Debug tests default to full auditing anyway; pinning it here keeps the
# gate meaningful even when the caller exported VPEC_AUDIT=off.
# Hard timeouts: a hung watchdog/cancellation test must fail the gate,
# not wedge CI forever. The engine tests park threads on purpose; a
# deadlock there looks exactly like "still running" without this.
timeout 1200 env VPEC_AUDIT=full cargo test -q --workspace

echo "==> release-profile audit pass (tier-1 integration tests, VPEC_AUDIT=full)"
# Release builds default to audits OFF; this run covers the enforcement
# paths in the exact profile users deploy.
timeout 600 env VPEC_AUDIT=full cargo test -q --release --test audit_invariants --test paper_claims

echo "==> cargo clippy (workspace, all targets, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> static analysis gate (vpec-analyze vs lint.baseline)"
# Project-specific lints (NaN ordering, panic freedom, unsafe audit,
# numerical-class contracts, env-var registry) over the workspace's own
# sources. "No new violations": anything not in the committed baseline or
# covered by an inline `// vpec-allow:` waiver fails the gate. The scan is
# a single lex+lint pass (~40 ms); the timeout is a hang backstop, not a
# budget.
timeout 120 cargo run --release -q -p vpec-analyze --bin vpec-analyze -- \
  --root . --baseline lint.baseline

echo "==> perf bench smoke run (--quick, smallest layout)"
smoke_json="target/bench_perf_smoke.json"
cargo run --release -q -p vpec-bench --bin perf -- --quick --out "$smoke_json"
# The smoke JSON must carry the tracked schema: header keys plus at
# least one timed phase with its equivalence metric.
for key in '"bench": "perf"' '"available_parallelism"' '"phases"' \
           '"serial_seconds"' '"parallel_seconds"' '"speedup"' '"max_abs_diff"' \
           '"iterative_crossover"' '"waveform_peak"' '"max_abs_diff_vs_dense"' \
           '"lint"' '"wall_seconds"' '"files_scanned"' '"lines_scanned"' \
           '"service_levels"' '"p50_ms"' '"p99_ms"' '"model_hit_ratio"' \
           '"factor_hit_ratio"' '"degraded_pct"'; do
  if ! grep -q "$key" "$smoke_json"; then
    echo "BENCH_perf smoke output is malformed: missing $key" >&2
    exit 1
  fi
done

echo "==> tune smoke run (vpec tune --quick, profile round-trip)"
tune_out="target/tune_smoke.tune"
timeout 300 cargo run --release -q -p vpec-cli --bin vpec -- tune --quick -o "$tune_out"
for key in par_min_cols elim_par_min_dim lu_block_min_dim chol_block_min_dim \
           panel_width ac_min_points_per_thread iter_min_dim iter_restart; do
  grep -q "^$key = " "$tune_out" || { echo "tune profile missing $key" >&2; exit 1; }
done
# The written profile must round-trip: a run under VPEC_TUNE=<file> must
# load it cleanly (a parse failure prints a loud warning and falls back).
env VPEC_TUNE="$tune_out" timeout 120 cargo run --release -q -p vpec-cli --bin vpec -- \
  model --bits 4 --kind wvpec-g:2 > /dev/null 2> target/tune_smoke_stderr.txt
if grep -qi "tune" target/tune_smoke_stderr.txt; then
  echo "tune smoke: VPEC_TUNE=$tune_out was not accepted cleanly:" >&2
  cat target/tune_smoke_stderr.txt >&2
  exit 1
fi

echo "==> iterative solver smoke run (simulate --solver=iterative vs --solver=direct)"
direct_csv="target/solver_smoke_direct.csv"
iter_csv="target/solver_smoke_iter.csv"
iter_log="target/solver_smoke_iter.txt"
timeout 120 cargo run --release -q -p vpec-cli --bin vpec -- \
  simulate --bits 6 --kind wvpec-g:2 --tstop 50p --audit=full --solver=direct \
  -o "$direct_csv" > /dev/null
timeout 120 cargo run --release -q -p vpec-cli --bin vpec -- \
  simulate --bits 6 --kind wvpec-g:2 --tstop 50p --audit=full --solver=iterative \
  -o "$iter_csv" > "$iter_log"
# A forced-iterative run that falls back to the direct chain prints a
# "factorization: iterative failed -> ..." line; the smoke requires the
# Krylov stage itself to carry the solve.
if grep -q "factorization:" "$iter_log"; then
  echo "solver smoke: --solver=iterative fell back to the direct chain:" >&2
  grep "factorization:" "$iter_log" >&2
  exit 1
fi
# Both backends must produce the same waveforms: worst per-sample
# disagreement within 1% of the direct run's peak (the release accuracy
# bound is ~0.1%; 1% absorbs platform noise while still catching a
# mis-converged Krylov solve).
paste -d, "$direct_csv" "$iter_csv" | awk -F, '
  NR == 1 { nc = NF / 2; next }
  {
    for (i = 2; i <= nc; i++) {
      d = $i - $(i + nc); if (d < 0) d = -d
      m = $i; if (m < 0) m = -m
      if (m > peak) peak = m
      if (d > worst) worst = d
    }
  }
  END {
    if (peak <= 0) { print "solver smoke: direct waveform is identically zero" > "/dev/stderr"; exit 1 }
    printf "iterative vs direct: worst |diff| %.3e on peak %.3e V\n", worst, peak
    if (worst > 0.01 * peak) {
      print "solver smoke: iterative waveform diverges from the direct backend" > "/dev/stderr"
      exit 1
    }
  }'

echo "==> batch engine smoke run (vpec batch, request isolation + degradation + ledger)"
batch_in="target/batch_smoke_in.jsonl"
batch_out="target/batch_smoke_out.jsonl"
batch_err="target/batch_smoke_err.txt"
batch_ledger="target/batch_smoke_ledger.jsonl"
# Six-request mix: two healthy (same geometry — the second must be a
# cache hit), one over-budget full-inversion request (must degrade to
# wVPEC), one fault-injected panic (must consume one retry and fail with
# a typed error), one healthy windowed request, one AC sweep. The batch
# as a whole must exit 0 and leave one schema-valid ledger record per
# request behind.
cat > "$batch_in" <<'EOF'
{"id":"ok-1","bits":3,"kind":"wvpec-g:2","t_stop":5e-11}
{"id":"ok-2","bits":3,"kind":"wvpec-g:2","t_stop":5e-11}
{"id":"over-budget","bits":8,"kind":"vpec-full","t_stop":5e-11}
{"id":"boom","bits":3,"kind":"wvpec-g:2","t_stop":5e-11,"faults":{"panic_engine":true}}
{"id":"ok-3","bits":4,"kind":"wvpec-g:2","t_stop":5e-11}
{"id":"ac-1","bits":3,"kind":"wvpec-g:2","analysis":"ac","points_per_decade":2}
EOF
# With -o the summary goes to stdout (stderr carries the injected panic's
# backtrace); capture both so the summary assertion below sees it.
timeout 120 cargo run --release -q -p vpec-cli --bin vpec -- \
  batch --in "$batch_in" --max-dim 6 --retries 1 --backoff-ms 1 --degrade-window 2 \
  --ledger "$batch_ledger" -o "$batch_out" > "$batch_err" 2>&1
grep "^batch:" "$batch_err" || true
[ "$(wc -l < "$batch_out")" -eq 6 ] || { echo "batch smoke: expected 6 response lines" >&2; exit 1; }
# Every line is valid JSON with the response schema (the trace bin's
# validator is for trace streams, so lean on python-free grep checks).
while IFS= read -r line; do
  case "$line" in
    '{"id":"'*'","status":"'*) ;;
    *) echo "batch smoke: malformed response line: $line" >&2; exit 1 ;;
  esac
done < "$batch_out"
grep -q '"id":"ok-1","status":"ok"' "$batch_out" || { echo "batch smoke: ok-1 must succeed" >&2; exit 1; }
grep -q '"id":"ok-2","status":"ok".*"cache_hit":true' "$batch_out" \
  || { echo "batch smoke: ok-2 must be a cache hit" >&2; exit 1; }
grep -q '"id":"over-budget","status":"ok".*"degraded":true.*"degraded_reason":"budget"' "$batch_out" \
  || { echo "batch smoke: over-budget must degrade to wVPEC" >&2; exit 1; }
grep -q '"id":"boom","status":"failed".*"category":"panic"' "$batch_out" \
  || { echo "batch smoke: boom must fail with a typed panic error" >&2; exit 1; }
grep -q '"id":"ok-3","status":"ok"' "$batch_out" || { echo "batch smoke: ok-3 must succeed" >&2; exit 1; }
grep -q '"id":"ac-1","status":"ok"' "$batch_out" || { echo "batch smoke: ac-1 must succeed" >&2; exit 1; }
# The summary must count the retry the panic consumed.
grep -q '1 retries' "$batch_err" || { echo "batch smoke: summary must report 1 retry" >&2; exit 1; }
# One run-ledger record per request, contiguous seq (vpec stats validates
# the schema before aggregating — a dropped or reordered line fails it).
[ "$(wc -l < "$batch_ledger")" -eq 6 ] || { echo "batch smoke: expected 6 ledger records" >&2; exit 1; }

echo "==> fleet stats smoke run (vpec stats over the batch ledger, --fail-if gates)"
stats_json="target/batch_smoke_stats.json"
timeout 120 cargo run --release -q -p vpec-cli --bin vpec -- \
  stats "$batch_ledger" --format json > "$stats_json"
# The known batch composition must survive the ledger round trip.
for key in '"total":6' '"ok":5' '"failed":1' '"degraded":1' '"retries":1' \
           '"latency_ms"' '"p99_ms"' '"cache"' '"strategies"' \
           '"degraded_reasons":{"budget":1}' '"errors":{"panic":1}' '"throughput"'; do
  if ! grep -q "$key" "$stats_json"; then
    echo "vpec stats output is malformed: missing $key" >&2
    cat "$stats_json" >&2
    exit 1
  fi
done
# A generous threshold passes (exit 0)...
timeout 120 cargo run --release -q -p vpec-cli --bin vpec -- \
  stats "$batch_ledger" --fail-if 'p99>60s' > /dev/null
# ...and a breached one fails with the runtime exit code (1, not a crash).
set +e
timeout 120 cargo run --release -q -p vpec-cli --bin vpec -- \
  stats "$batch_ledger" --fail-if 'degraded>0%' > /dev/null 2> target/batch_smoke_failif.txt
failif_rc=$?
set -e
[ "$failif_rc" -eq 1 ] || { echo "vpec stats --fail-if must exit 1 on a breach (got $failif_rc)" >&2; exit 1; }
grep -q 'fail-if breached' target/batch_smoke_failif.txt \
  || { echo "vpec stats --fail-if breach must name the breached condition" >&2; exit 1; }

echo "==> trace JSONL smoke run (model --trace=jsonl, schema validation)"
trace_jsonl="target/trace_smoke.jsonl"
cargo run --release -q -p vpec-cli --bin vpec -- \
  model --bits 8 --kind vpec-full --trace=jsonl:"$trace_jsonl" > /dev/null
# Schema check with the crate's own validator: every line parses, every
# close matches an open, no id opens twice. Exit 1 on any violation.
cargo run --release -q -p vpec-bench --bin trace -- --validate "$trace_jsonl"
for phase in extract model.invert model.build; do
  if ! grep -q "\"name\":\"$phase\"" "$trace_jsonl"; then
    echo "trace stream is missing the $phase phase span" >&2
    exit 1
  fi
done

echo "==> trace bench smoke run (--quick, serial-vs-parallel attribution)"
trace_json="target/bench_trace_smoke.json"
# The bin itself exits 1 if any required phase span (extract,
# model.invert, factor, transient, ac.sweep) is missing from the run.
cargo run --release -q -p vpec-bench --bin trace -- --quick --out "$trace_json"
for key in '"bench": "trace"' '"phases"' '"serial_seconds"' \
           '"parallel_seconds"' '"speedup"'; do
  if ! grep -q "$key" "$trace_json"; then
    echo "BENCH_trace smoke output is malformed: missing $key" >&2
    exit 1
  fi
done

echo "==> trace-off overhead assertion (quick perf vs tracked BENCH_perf.json)"
# The perf smoke above ran with tracing off (the default), so its small
# layout must not be grossly slower than the tracked baseline: the
# disabled trace path is one relaxed atomic load per site, and a
# regression there (e.g. formatting on the disabled path of a hot
# counter) shows up as a multiple, not a percentage. The 3x tolerance
# absorbs machine noise while still catching that class of bug.
if [ -f BENCH_perf.json ]; then
  baseline=$(awk '/"name": "small"/{s=1;next} s&&/"name": "/{exit} s&&/"serial_seconds"/{gsub(/[,]/,"");t+=$2} END{printf "%.9e", t}' BENCH_perf.json)
  current=$(awk '/"name": "small"/{s=1;next} s&&/"name": "/{exit} s&&/"serial_seconds"/{gsub(/[,]/,"");t+=$2} END{printf "%.9e", t}' "$smoke_json")
  awk -v b="$baseline" -v c="$current" 'BEGIN {
    if (b <= 0) { print "no small-layout baseline in BENCH_perf.json; skipping"; exit 0 }
    ratio = c / b
    printf "small layout serial total: baseline %.3e s, current %.3e s (ratio %.2f)\n", b, c, ratio
    if (ratio > 3.0) { print "trace-off overhead regression: quick perf is >3x the tracked baseline" > "/dev/stderr"; exit 1 }
  }'
else
  echo "BENCH_perf.json not tracked yet; skipping overhead comparison"
fi

echo "==> per-phase perf regression gate (quick perf vs tracked BENCH_perf.json)"
# Each small-layout phase's serial time must stay within 10% of the
# tracked baseline. Phases under a 1 ms noise floor are reported but not
# gated (µs-scale timings jitter far beyond 10% between runs). Speedup
# columns are never gated here: rows carry hw_limited=true whenever the
# machine granted fewer workers than requested, and serial times are the
# only hardware-independent signal.
if [ -f BENCH_perf.json ]; then
  awk '
    function phase_of(l) { sub(/.*"phase": "/, "", l); sub(/".*/, "", l); return l }
    FNR == 1 { f++ }
    /"name": "small"/ { s = 1; next }
    s && /"name": "/ { s = 0 }
    s && /"phase"/ { p = phase_of($0) }
    s && /"serial_seconds"/ {
      line = $0; gsub(/[, ]/, "", line); sub(/.*:/, "", line)
      v[f "/" p] = line + 0
      if (f == 1) order[++n] = p
    }
    END {
      bad = 0
      for (i = 1; i <= n; i++) {
        p = order[i]; b = v["1/" p]; c = v["2/" p]
        if (b == "" || c == "") { printf "phase %-14s missing in one file; skipping\n", p; continue }
        if (b < 1e-3) { printf "phase %-14s baseline %.3e s under the 1 ms gate floor; reported only (current %.3e s)\n", p, b, c; continue }
        ratio = c / b
        printf "phase %-14s baseline %.3e s, current %.3e s (ratio %.2f)\n", p, b, c, ratio
        if (ratio > 1.10) {
          printf "perf regression: small-layout phase %s is >10%% slower than the tracked baseline\n", p > "/dev/stderr"
          bad = 1
        }
      }
      exit bad
    }' BENCH_perf.json "$smoke_json"
else
  echo "BENCH_perf.json not tracked yet; skipping per-phase gate"
fi

echo "==> all checks passed"
