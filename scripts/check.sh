#!/usr/bin/env bash
# Offline CI gate: build, test, lint. No network access required — the
# workspace has no external dependencies.
#
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "==> cargo build --release (workspace, all targets)"
cargo build --release --workspace --all-targets

echo "==> cargo test -q (workspace)"
cargo test -q --workspace

echo "==> cargo clippy (workspace, all targets, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> all checks passed"
