//! **vpec** — a Rust reproduction of *A Provably Passive and Cost-Efficient
//! Model for Inductive Interconnects* (Yu & He, DAC 2003 / IEEE TCAD 24(8),
//! 2005): the VPEC model family for on-chip inductance, with guaranteed-
//! passive truncated (tVPEC) and windowed (wVPEC) sparsifications, a full
//! PEEC baseline, closed-form parasitic extraction, and a SPICE-class MNA
//! circuit engine.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`numerics`] — dense/sparse LU, Cholesky, complex arithmetic;
//! * [`geometry`] — filaments, bus and spiral generators, discretization;
//! * [`extract`] — partial inductance, capacitance, resistance extraction;
//! * [`circuit`] — netlists, DC/transient/AC analyses, waveform metrics,
//!   SPICE export;
//! * [`core`] — the VPEC models, sparsifications, passivity checks, and
//!   the experiment harness;
//! * [`engine`] — the resilient batch scenario engine: JSONL request
//!   streams through an isolated boundary with deadlines, budgets,
//!   retry/backoff, graceful wVPEC degradation and a model cache;
//! * [`trace`] — structured tracing and metrics: spans, counters, and
//!   JSONL export, gated by `VPEC_TRACE` / `--trace`.
//!
//! # Quickstart
//!
//! ```
//! use vpec::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The paper's 5-bit bus: extract, build PEEC and full VPEC, simulate.
//! let exp = Experiment::new(
//!     BusSpec::new(5).build(),
//!     &ExtractionConfig::paper_default(),
//!     DriveConfig::paper_default(),
//! );
//! let peec = exp.build(ModelKind::Peec)?;
//! let vpec = exp.build(ModelKind::VpecFull)?;
//! let spec = TransientSpec::new(0.2e-9, 1e-12);
//! let (rp, _) = peec.run_transient(&spec)?;
//! let (rv, _) = vpec.run_transient(&spec)?;
//! let diff = WaveformDiff::compare(
//!     &peec.far_voltage(&rp, 1)?,
//!     &vpec.far_voltage(&rv, 1)?,
//! );
//! assert!(diff.max_pct_of_peak() < 1.0); // Fig. 2: identical waveforms
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use vpec_circuit as circuit;
pub use vpec_core as core;
pub use vpec_engine as engine;
pub use vpec_extract as extract;
pub use vpec_geometry as geometry;
pub use vpec_numerics as numerics;
pub use vpec_trace as trace;

/// One-stop imports for typical use.
pub mod prelude {
    pub use vpec_circuit::ac::AcSpec;
    pub use vpec_circuit::metrics::{crossing_time, peak_abs, resample, WaveformDiff};
    pub use vpec_circuit::{
        AdaptiveSpec, Circuit, CircuitError, FactorDiagnostics, FactorStrategy, FaultInjection,
        Integrator, NodeId, SolverKind, TransientDiagnostics, TransientSpec, Waveform,
    };
    pub use vpec_core::harness::{paper_transient_spec, BuiltModel, Experiment, ModelKind};
    pub use vpec_core::noise::{noise_scan, worst_aggressor_alignment, NoiseReport};
    pub use vpec_core::{
        repair_passivity, CoreError, DriveConfig, LoweringStyle, PassivityReport, RepairReport,
        SolveReport, VpecModel,
    };
    pub use vpec_core::harness::BuildBudget;
    pub use vpec_engine::{Engine, EngineConfig, EngineError, ScenarioRequest, ScenarioResponse};
    pub use vpec_extract::{extract, ConductorSystem, ExtractionConfig, Parasitics};
    pub use vpec_geometry::{um, BusSpec, Layout, SpiralSpec, SubstrateSpec, GHZ};
    pub use vpec_numerics::CancelToken;
}
