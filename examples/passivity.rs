//! Why VPEC exists: truncating `L` destroys passivity, truncating `Ĝ`
//! does not.
//!
//! Reproduces the paper's motivation (§I) and Theorems 1–2 numerically:
//!
//! 1. the partial-inductance matrix `L` of a bus is **not** diagonally
//!    dominant, and naively dropping its small off-diagonals produces an
//!    indefinite matrix (an active — energy-creating — model);
//! 2. the VPEC circuit matrix `Ĝ = Dₗ·L⁻¹·Dₗ` **is** strictly diagonally
//!    dominant, so the same truncation keeps it positive definite.
//!
//! Run with: `cargo run --release --example passivity`

use vpec::numerics::{Cholesky, DenseMatrix};
use vpec::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let layout = BusSpec::new(24).build();
    let para = extract(&layout, &ExtractionConfig::paper_default());
    let l = &para.inductance;

    println!("24-bit bus, partial inductance matrix L:");
    println!("  symmetric:                      {}", l.is_symmetric(1e-12));
    println!("  positive definite:              {}", Cholesky::is_spd(l, 1e-9));
    println!(
        "  strictly diagonally dominant:   {}   <-- the problem",
        l.is_strictly_diagonally_dominant()
    );

    // Naive truncation of L: drop couplings beyond ±4 neighbours.
    let n = l.rows();
    let mut l_trunc = DenseMatrix::<f64>::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            if i.abs_diff(j) <= 4 {
                l_trunc[(i, j)] = l[(i, j)];
            }
        }
    }
    println!("\nnaively truncated L (±4 neighbours kept):");
    println!(
        "  positive definite:              {}   <-- passivity lost!",
        Cholesky::is_spd(&l_trunc, 1e-9)
    );

    // The VPEC route: invert first, then truncate.
    let full = VpecModel::full(&para)?;
    let g_report = full.passivity_report();
    println!("\nfull VPEC circuit matrix Ĝ = Dl·L⁻¹·Dl:");
    println!("  positive definite:              {} (Theorem 1)", g_report.positive_definite);
    println!(
        "  strictly diagonally dominant:   {} (Theorem 2)",
        g_report.strictly_diag_dominant
    );

    let truncated = full.retain(|i, j| i.abs_diff(j) <= 4);
    let t_report = truncated.passivity_report();
    println!("\ntruncated Ĝ (same ±4 neighbours kept):");
    println!(
        "  positive definite:              {}   <-- passivity preserved",
        t_report.positive_definite
    );
    println!(
        "  strictly diagonally dominant:   {}",
        t_report.strictly_diag_dominant
    );
    println!(
        "  kept couplings: {} of {}",
        truncated.g_off().len(),
        full.g_off().len()
    );

    assert!(!Cholesky::is_spd(&l_trunc, 1e-9));
    assert!(t_report.is_passive());
    println!("\nconclusion: sparsify the inverse (VPEC), never the inductance matrix itself.");
    Ok(())
}
