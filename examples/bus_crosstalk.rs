//! Crosstalk noise analysis of a 32-bit bus with sparsified VPEC models.
//!
//! The motivating workload of the paper: estimating far-end crosstalk
//! noise on a wide parallel bus where dense PEEC coupling makes SPICE slow.
//! This example sweeps sparsification levels (numerical tVPEC thresholds
//! and wVPEC window sizes) and prints the noise-peak estimate per victim
//! plus the accuracy/size trade-off against the PEEC reference.
//!
//! Run with: `cargo run --release --example bus_crosstalk`

use vpec::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bits = 32;
    let exp = Experiment::new(
        BusSpec::new(bits).build(),
        &ExtractionConfig::paper_default(),
        DriveConfig::paper_default(), // bit 0 aggressor, rest quiet
    );
    let spec = TransientSpec::new(0.5e-9, 1e-12);

    // Reference: PEEC.
    let peec = exp.build(ModelKind::Peec)?;
    let (rp, t_peec) = peec.run_transient(&spec)?;
    println!("PEEC reference ({bits}-bit bus), sim {:.0} ms", t_peec * 1e3);
    println!("\nnoise peaks along the bus (far-end |V| max):");
    for victim in [1, 2, 4, 8, 16, 31] {
        let w = peec.far_voltage(&rp, victim)?;
        println!("  bit {victim:>2}: {:7.2} mV", peak_abs(&w) * 1e3);
    }

    // Sweep sparsified models.
    println!("\nmodel                    elements   sim time   avg victim-1 err");
    let wp = peec.far_voltage(&rp, 1)?;
    for kind in [
        ModelKind::VpecFull,
        ModelKind::TVpecNumerical { threshold: 0.005 },
        ModelKind::TVpecNumerical { threshold: 0.02 },
        ModelKind::WVpecGeometric { b: 16 },
        ModelKind::WVpecGeometric { b: 8 },
    ] {
        let built = exp.build(kind)?;
        let (r, secs) = built.run_transient(&spec)?;
        let d = WaveformDiff::compare(&wp, &built.far_voltage(&r, 1)?);
        println!(
            "{:<24} {:>8}   {:>6.0} ms   {:.3}% of peak",
            kind.label(),
            built.element_count(),
            secs * 1e3,
            d.avg_pct_of_peak()
        );
    }

    println!(
        "\n(noise is worst at the nearest victim and decays slowly along the bus —\n\
         the long-range inductive coupling the paper's models preserve)"
    );
    Ok(())
}

use vpec::circuit::metrics::peak_abs;
