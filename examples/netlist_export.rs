//! SPICE netlist export: write HSPICE-dialect decks for the PEEC and
//! wVPEC models of the same bus, and compare their sizes (the Fig. 8(b)
//! model-size metric).
//!
//! Run with: `cargo run --release --example netlist_export`
//! Decks are written to `target/netlists/`.

use std::fs;
use vpec::circuit::spice_out::to_spice;
use vpec::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let exp = Experiment::new(
        BusSpec::new(8).build(),
        &ExtractionConfig::paper_default(),
        DriveConfig::paper_default(),
    );

    let out_dir = std::path::Path::new("target/netlists");
    fs::create_dir_all(out_dir)?;

    let mut sizes = Vec::new();
    for kind in [
        ModelKind::Peec,
        ModelKind::VpecFull,
        ModelKind::WVpecGeometric { b: 4 },
    ] {
        let built = exp.build(kind)?;
        let deck = to_spice(
            &built.model.circuit,
            &format!("{} model of an 8-bit bus", kind.label()),
        );
        let fname = out_dir.join(format!(
            "{}.sp",
            kind.label()
                .replace(['(', ')', ',', '='], "_")
                .replace(' ', "-")
        ));
        fs::write(&fname, &deck)?;
        println!(
            "{:<16} -> {} ({} bytes, {} elements)",
            kind.label(),
            fname.display(),
            deck.len(),
            built.element_count()
        );
        sizes.push((kind.label(), deck.len()));
    }

    // Show the head of the VPEC deck: electrical + magnetic blocks.
    let vpec = exp.build(ModelKind::WVpecGeometric { b: 4 })?;
    let deck = to_spice(&vpec.model.circuit, "wVPEC deck excerpt");
    println!("\nwVPEC deck excerpt:");
    for line in deck.lines().take(24) {
        println!("  {line}");
    }
    println!("  ...");
    Ok(())
}
