//! The three-turn spiral inductor on a lossy substrate (Figs. 6–7).
//!
//! Builds the paper's 92-segment spiral, extracts RLCM parasitics with the
//! substrate eddy-loss lumping, applies numerical windowing (nwVPEC), and
//! compares the output-port pulse response of the PEEC, full VPEC and
//! nwVPEC models.
//!
//! Run with: `cargo run --release --example spiral_inductor`

use vpec::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = SpiralSpec::paper_three_turn();
    let layout = spec.build();
    println!(
        "spiral: {} segments over {} turns, total length {:.0} µm",
        layout.filaments().len(),
        3,
        layout.total_length() * 1e6
    );

    let cfg = ExtractionConfig::paper_default()
        .with_substrate(spec.substrate_spec().expect("paper spiral has a substrate"));
    let drive = DriveConfig::paper_default()
        .stimulus(Waveform::pulse(1.0, 10e-12, 200e-12, 10e-12));
    let exp = Experiment::new(layout, &cfg, drive);

    // Antiparallel sides couple negatively — count the signs.
    let l = &exp.parasitics.inductance;
    let (mut pos, mut neg) = (0usize, 0usize);
    for i in 0..l.rows() {
        for j in 0..i {
            if l[(i, j)] > 0.0 {
                pos += 1;
            } else if l[(i, j)] < 0.0 {
                neg += 1;
            }
        }
    }
    println!("mutual terms: {pos} positive (parallel), {neg} negative (antiparallel)");

    let tspec = TransientSpec::new(0.6e-9, 0.5e-12);
    let peec = exp.build(ModelKind::Peec)?;
    let (rp, sp) = peec.run_transient(&tspec)?;
    let wp = peec.far_voltage(&rp, 0)?;

    for kind in [
        ModelKind::VpecFull,
        ModelKind::WVpecNumerical { threshold: 1.5e-4 },
        ModelKind::WVpecNumerical { threshold: 5e-2 },
    ] {
        let built = exp.build(kind)?;
        let (r, secs) = built.run_transient(&tspec)?;
        let d = WaveformDiff::compare(&wp, &built.far_voltage(&r, 0)?);
        println!(
            "{:<16} sparse factor {:>5.1}% | sim {:>5.0} ms (PEEC {:.0} ms) | avg err {:.3}% of peak",
            built.kind.label(),
            100.0 * built.sparse_factor.unwrap_or(1.0),
            secs * 1e3,
            sp * 1e3,
            d.avg_pct_of_peak()
        );
    }

    // A few output samples for the curious.
    println!("\noutput-port pulse response (PEEC):");
    let n = wp.len();
    for k in (0..n).step_by(n / 10) {
        println!("  t = {:5.0} ps  v = {:+8.4} V", rp.time()[k] * 1e12, wp[k]);
    }
    Ok(())
}
