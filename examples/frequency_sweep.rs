//! Frequency-dependent R(f) / L(f) of a thick conductor via volume
//! filaments — the FastHenry-style extraction the paper invokes for
//! frequencies beyond 10 GHz ("the volume filament or conduction mode
//! based decomposition can be applied to consider the skin and proximity
//! effects").
//!
//! A wide power wire is decomposed into an 8×4 sub-filament bundle and
//! its terminal impedance solved from 1 MHz to 50 GHz. The classic skin-
//! effect signature appears: resistance rises as √f once the skin depth
//! drops below the conductor dimensions, and inductance falls as the
//! internal flux is expelled.
//!
//! Run with: `cargo run --release --example frequency_sweep`

use vpec::extract::volume::{auto_subdivisions, decompose};
use vpec::extract::ConductorSystem;
use vpec::geometry::discretize::skin_depth;
use vpec::geometry::{um, Axis, Filament, GHZ};

const RHO_CU: f64 = 1.7e-8;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let wire = Filament::new([0.0; 3], Axis::X, um(1000.0), um(8.0), um(4.0));
    println!(
        "conductor: {} µm × {} µm × {} µm copper",
        wire.length * 1e6,
        wire.width * 1e6,
        wire.thickness * 1e6
    );
    let (nw, nt) = auto_subdivisions(&wire, RHO_CU, 50.0 * GHZ, 8);
    println!("volume decomposition at 50 GHz: {nw} × {nt} sub-filaments\n");

    let sys = ConductorSystem::new(&[decompose(&wire, nw, nt)], RHO_CU);
    println!("freq        skin depth   R (Ω)     R/Rdc    L (nH)");
    println!("---------------------------------------------------");
    let r_dc = RHO_CU * wire.length / wire.cross_section();
    for &f in &[
        1e6, 1e7, 1e8, 1e9, 2e9, 5e9, 10e9, 20e9, 50e9_f64,
    ] {
        let (r, l) = sys.effective_rl(0, f)?;
        println!(
            "{:>7.0e} Hz   {:>6.2} µm   {:>7.4}   {:>5.2}   {:>6.4}",
            f,
            skin_depth(RHO_CU, f) * 1e6,
            r,
            r / r_dc,
            l * 1e9
        );
    }

    // Proximity effect: a nearby return conductor reshapes the current.
    println!("\nproximity: same wire with an adjacent return conductor (3 µm gap)");
    let ret = Filament::new([0.0, um(11.0), 0.0], Axis::X, um(1000.0), um(8.0), um(4.0))
        .with_direction(-1.0);
    let pair = ConductorSystem::new(
        &[decompose(&wire, nw, nt), decompose(&ret, nw, nt)],
        RHO_CU,
    );
    for &f in &[1e8, 10e9_f64] {
        let (r_iso, _) = sys.effective_rl(0, f)?;
        let (r_prox, _) = pair.effective_rl(0, f)?;
        println!(
            "  {:>6.0e} Hz: isolated R = {:.4} Ω, with return R = {:.4} Ω ({:+.1}%)",
            f,
            r_iso,
            r_prox,
            100.0 * (r_prox - r_iso) / r_iso
        );
    }
    Ok(())
}
