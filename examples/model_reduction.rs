//! Model order reduction of an interconnect macromodel — the direction
//! the paper announces as future work ("the authors intend to develop
//! model order reduction for the VPEC model"), built here on Krylov
//! projection for the passive RLC(+K) structure (the PEEC netlist; see
//! `vpec::circuit::mor` for why controlled-source netlists need a
//! structure-preserving method instead).
//!
//! A 48-bit bus PEEC model — MNA system of several hundred unknowns with
//! dense inductive coupling — is reduced to a 24-state macromodel matching
//! moments about 3 GHz from the aggressor to two victim far-ends, and the
//! macromodel's transient is compared against the full netlist simulation.
//!
//! Run with: `cargo run --release --example model_reduction`

use vpec::circuit::metrics::{resample, WaveformDiff};
use vpec::circuit::mor::reduce_about;
use vpec::circuit::Element;
use vpec::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let exp = Experiment::new(
        BusSpec::new(48).build(),
        &ExtractionConfig::paper_default(),
        DriveConfig::paper_default(),
    );
    let built = exp.build(ModelKind::Peec)?;
    let ckt = &built.model.circuit;
    println!(
        "PEEC netlist: {} elements, MNA dimension {}",
        ckt.element_count(),
        ckt.mna_dim()
    );

    // Locate the aggressor source element.
    let src = ckt
        .elements()
        .iter()
        .position(|e| matches!(e, Element::VSource { name, .. } if name.starts_with("drv")))
        .map(vpec::circuit::ElementId)
        .expect("aggressor source exists");

    // Reduce: observe the near victim and a mid-bus victim.
    let outputs = [built.model.far_nodes[1], built.model.far_nodes[24]];
    // Expand about s0 = 2π·3 GHz — inside the noise pulse's band.
    let s0 = 2.0 * std::f64::consts::PI * 3.0e9;
    let t0 = std::time::Instant::now();
    let rom = reduce_about(ckt, src, &outputs, 24, s0)?;
    println!(
        "reduced to order {} in {:.1} ms ({}x smaller than the MNA system)",
        rom.order(),
        t0.elapsed().as_secs_f64() * 1e3,
        ckt.mna_dim() / rom.order()
    );

    // Compare transients.
    let t_stop = 0.5e-9;
    let dt = 1e-12;
    let t1 = std::time::Instant::now();
    let (t_rom, y_rom) = rom.transient(t_stop, dt)?;
    let rom_secs = t1.elapsed().as_secs_f64();
    let t2 = std::time::Instant::now();
    let (full, _) = built.run_transient(&TransientSpec::new(t_stop, dt))?;
    let full_secs = t2.elapsed().as_secs_f64();

    for (k, &node) in outputs.iter().enumerate() {
        let v_full = full.voltage(node)?;
        let v_rom = resample(&t_rom, &y_rom[k], full.time());
        let d = WaveformDiff::compare(&v_full, &v_rom);
        println!(
            "victim {}: noise peak {:.2} mV | ROM error {:.3}% of peak",
            if k == 0 { 1 } else { 24 },
            d.ref_peak * 1e3,
            d.max_pct_of_peak()
        );
    }
    println!(
        "simulation time: full netlist {:.1} ms, macromodel {:.2} ms ({:.0}x)",
        full_secs * 1e3,
        rom_secs * 1e3,
        full_secs / rom_secs.max(1e-9)
    );
    Ok(())
}
