//! Quickstart: the paper's 5-bit bus end to end.
//!
//! Builds the PEEC baseline and the full VPEC model for the same 5-bit
//! aligned bus, runs the 1 V / 10 ps-rise crosstalk transient, and shows
//! that the two models produce the same waveforms while VPEC replaces all
//! 10 mutual inductances with a resistive magnetic circuit.
//!
//! Run with: `cargo run --release --example quickstart`

use vpec::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Geometry: 5 lines, 1000 µm × 1 µm × 1 µm, 2 µm spacing (paper §II-C).
    let layout = BusSpec::new(5).build();
    println!(
        "bus: {} nets, {} filaments, total wire length {:.1} mm",
        layout.nets().len(),
        layout.filaments().len(),
        layout.total_length() * 1e3
    );

    // 2. Extraction (copper, low-k, 10 GHz) + drive (Rd 120 Ω, CL 10 fF).
    let exp = Experiment::new(
        layout,
        &ExtractionConfig::paper_default(),
        DriveConfig::paper_default(),
    );
    println!(
        "extracted: L[0][0] = {:.3} nH, adjacent M = {:.3} nH, R = {:.1} Ω per line",
        exp.parasitics.inductance[(0, 0)] * 1e9,
        exp.parasitics.inductance[(0, 1)] * 1e9,
        exp.parasitics.resistance[0]
    );

    // 3. The VPEC model and its passivity certificate (Theorems 1–2).
    let (model, secs) = exp.vpec_model(ModelKind::VpecFull)?;
    let report = model.passivity_report();
    println!(
        "full VPEC built in {:.2} ms: passive = {}, strictly diagonally dominant = {}",
        secs * 1e3,
        report.is_passive(),
        report.strictly_diag_dominant
    );
    println!(
        "effective resistances: R^10 (ground) = {:.3} mΩ, R^12 (coupling) = {:.3} mΩ",
        model.ground_resistance(0) * 1e3,
        model
            .coupling_resistance(0, 1)
            .expect("full model keeps all couplings")
            * 1e3
    );

    // 4. Simulate PEEC vs full VPEC and compare the victim waveform.
    let peec = exp.build(ModelKind::Peec)?;
    let vpec = exp.build(ModelKind::VpecFull)?;
    let spec = TransientSpec::new(0.5e-9, 0.5e-12);
    let (rp, t_peec) = peec.run_transient(&spec)?;
    let (rv, t_vpec) = vpec.run_transient(&spec)?;
    let victim = 1; // far end of the second bit, the paper's probe
    let diff = WaveformDiff::compare(
        &peec.far_voltage(&rp, victim)?,
        &vpec.far_voltage(&rv, victim)?,
    );
    println!(
        "victim noise peak {:.1} mV | VPEC-vs-PEEC max diff {:.4}% of peak",
        diff.ref_peak * 1e3,
        diff.max_pct_of_peak()
    );
    println!(
        "sim times: PEEC {:.1} ms, full VPEC {:.1} ms | reactive elements: PEEC {}, VPEC {}",
        t_peec * 1e3,
        t_vpec * 1e3,
        peec.model.circuit.reactive_count(),
        vpec.model.circuit.reactive_count()
    );
    Ok(())
}
